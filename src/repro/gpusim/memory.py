"""Coalescing and locality accounting over real address streams.

Two pieces:

* :func:`warp_transactions` — the CUDA coalescing rule: a warp's load is
  split into one transaction per distinct ``transaction_bytes``-sized
  segment touched by its active lanes.
* :class:`CoalescingTracker` — accumulates, for one load *site* (array), the
  per-step transaction counts plus the cold/unique segment counts the
  analytic cache model uses to split traffic into DRAM vs. on-chip (L2).

The cold/on-chip split counts *compulsory* misses exactly: a segment's first
touch anywhere in the kernel is cold (DRAM), every repeat is potentially
served on-chip.  Capacity effects are applied afterwards by the timing model,
which discounts the on-chip share by the footprint-vs-L2-size ratio (random
replacement approximation).  The exact LRU simulator in :mod:`.cache`
validates this approximation in the test suite and the cache ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.gpusim.metrics import KernelMetrics

#: Sentinel placed in inactive lanes before segment sorting.
_SENTINEL = np.int64(np.iinfo(np.int64).max)


def warp_transactions(
    addresses: np.ndarray,
    active: Optional[np.ndarray] = None,
    transaction_bytes: int = 128,
    warp_size: int = 32,
) -> Tuple[int, int, np.ndarray]:
    """Apply the coalescing rule to a batch of per-lane byte addresses.

    Parameters
    ----------
    addresses:
        ``int64[n]`` byte addresses, one per lane/query, in lane order
        (lane ``i`` of warp ``w`` is element ``w * warp_size + i``).  The
        array is padded internally to a multiple of ``warp_size``.
    active:
        Optional ``bool[n]`` mask; inactive lanes issue no access.
    transaction_bytes, warp_size:
        Coalescing granularity and lanes per warp.

    Returns
    -------
    ``(requests, transactions, unique_segments)`` where ``requests`` is the
    number of warps with at least one active lane, ``transactions`` the total
    coalesced transaction count, and ``unique_segments`` the sorted distinct
    segment ids across the whole batch (for cold-miss accounting).
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    if addresses.ndim != 1:
        raise ValueError("addresses must be 1-D (lane order)")
    n = addresses.shape[0]
    if n == 0:
        return 0, 0, np.empty(0, dtype=np.int64)
    segs = addresses // transaction_bytes
    if active is not None:
        active = np.asarray(active, dtype=bool)
        if active.shape[0] != n:
            raise ValueError("active mask length mismatch")
        segs = np.where(active, segs, _SENTINEL)
    pad = (-n) % warp_size
    if pad:
        segs = np.concatenate([segs, np.full(pad, _SENTINEL, dtype=np.int64)])
    grid = segs.reshape(-1, warp_size)
    grid = np.sort(grid, axis=1)
    # New segment when it differs from its left neighbour (and is real).
    first = grid[:, :1] != _SENTINEL
    diffs = (grid[:, 1:] != grid[:, :-1]) & (grid[:, 1:] != _SENTINEL)
    per_warp = first.sum(axis=1) + diffs.sum(axis=1)
    transactions = int(per_warp.sum())
    requests = int(np.count_nonzero(per_warp))
    real = segs[segs != _SENTINEL]
    unique = np.unique(real)
    return requests, transactions, unique


@dataclass
class CoalescingTracker:
    """Accumulates coalescing + cold-segment stats for one load site.

    A kernel creates one tracker per global array it reads (node attributes,
    children arrays, query matrix, ...) and calls :meth:`record` once per
    lock-step level with the lanes' byte addresses.  ``metrics`` is updated
    in place; per-site totals stay available for reports.
    """

    name: str
    metrics: KernelMetrics
    transaction_bytes: int = 128
    warp_size: int = 32
    #: element size of the underlying array (bytes); used by reports only.
    element_bytes: int = 4
    #: Thread-private data with high line reuse (e.g. each thread re-reads
    #: its own query row every level): reuse transactions are served by the
    #: per-SM L1 and excluded from the L2/DRAM path by the timing model.
    l1_resident: bool = False
    #: Relative issue cost per transaction.  1.0 = an ordinary scattered
    #: load; dependent pointer-chase loads (CSR's children_arr_idx ->
    #: children_arr chain) cost more because the warp cannot overlap them,
    #: cutting memory-level parallelism; L1-resident reuse costs ~nothing.
    issue_cost: float = 1.0
    #: Fraction of this site's transactions served by the per-SM L1
    #: (discounted from the issue roof).  Kernel-dependent: the hybrid
    #: kernel synchronises every block on one tree at a time so its L1
    #: stays hot on that tree's nodes (paper §3.2.1: "nodes from subsequent
    #: subtrees will also be less likely to be evicted from the L1 cache"),
    #: while the independent kernel's warps drift across trees and thrash
    #: it.  Values are calibrated against the paper's Fig. 7 bands.
    l1_hit_rate: float = 0.0
    L1_ISSUE_COST = 0.15
    requests: int = 0
    transactions: int = 0
    cold_transactions: int = 0
    #: distinct segments seen over the whole kernel (footprint estimate).
    _seen: Optional[np.ndarray] = field(default=None, repr=False)

    def record(
        self, addresses: np.ndarray, active: Optional[np.ndarray] = None
    ) -> None:
        """Record one lock-step round of loads from this site."""
        req, txn, unique = warp_transactions(
            addresses, active, self.transaction_bytes, self.warp_size
        )
        if req == 0:
            return
        # Cold segments: not seen in any earlier step of this kernel.
        if self._seen is None:
            cold = unique.shape[0]
            self._seen = unique
        else:
            fresh = unique[~_isin_sorted(unique, self._seen)]
            cold = fresh.shape[0]
            if cold:
                self._seen = np.union1d(self._seen, fresh)
        if self.metrics.trace is not None:
            self.metrics.trace.append(self.name, unique)
        self.requests += req
        self.transactions += txn
        self.cold_transactions += cold
        self.metrics.global_load_requests += req
        self.metrics.global_load_transactions += txn
        self.metrics.dram_transactions += cold
        self.metrics.footprint_bytes += cold * self.transaction_bytes
        if self.l1_resident:
            self.metrics.l1_transactions += txn - cold
            self.metrics.issue_weighted_transactions += (
                cold * self.issue_cost + (txn - cold) * self.L1_ISSUE_COST
            )
        else:
            self.metrics.issue_weighted_transactions += (
                txn * self.issue_cost * (1.0 - self.l1_hit_rate)
            )

    @property
    def footprint_bytes(self) -> int:
        """Distinct bytes touched through this site (segment granularity)."""
        if self._seen is None:
            return 0
        return int(self._seen.shape[0]) * self.transaction_bytes


def _isin_sorted(values: np.ndarray, sorted_haystack: np.ndarray) -> np.ndarray:
    """``np.isin`` specialised for a sorted haystack (O(n log m))."""
    if sorted_haystack.shape[0] == 0:
        return np.zeros(values.shape[0], dtype=bool)
    pos = np.searchsorted(sorted_haystack, values)
    pos = np.clip(pos, 0, sorted_haystack.shape[0] - 1)
    return sorted_haystack[pos] == values
