"""``python -m repro.statcheck`` — the statcheck command line.

Exit codes: 0 = clean (possibly via baseline), 1 = new violations,
2 = usage or internal error.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.statcheck import baseline as baseline_mod
from repro.statcheck.core import all_rules, check_file, iter_python_files
from repro.statcheck.reporters import render_json, render_rule_list, render_text


def _select_rules(select: Optional[str], ignore: Optional[str]):
    rules = all_rules()
    if select:
        wanted = {s.strip() for s in select.split(",") if s.strip()}
        unknown = wanted - set(rules)
        if unknown:
            raise SystemExit(f"statcheck: unknown rule(s): {sorted(unknown)}")
        rules = {k: v for k, v in rules.items() if k in wanted}
    if ignore:
        dropped = {s.strip() for s in ignore.split(",") if s.strip()}
        rules = {k: v for k, v in rules.items() if k not in dropped}
    return list(rules.values())


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.statcheck",
        description="Repo-specific static analysis: determinism, kernel "
        "discipline, numeric safety and API hygiene "
        "(see docs/architecture.md § Static checks).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline JSON (default: ./statcheck-baseline.json if present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report every violation",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current violations as the new baseline and exit 0",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_list())
        return 0

    try:
        rules = _select_rules(args.select, args.ignore)
    except SystemExit as e:
        print(e, file=sys.stderr)
        return 2

    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing:
        print(f"statcheck: no such path(s): {missing}", file=sys.stderr)
        return 2

    violations = []
    files_checked = 0
    for f in iter_python_files(args.paths):
        files_checked += 1
        violations.extend(check_file(f, rules=rules))

    baseline_path = args.baseline or (
        baseline_mod.DEFAULT_BASELINE
        if os.path.exists(baseline_mod.DEFAULT_BASELINE)
        else None
    )

    if args.write_baseline:
        target = args.baseline or baseline_mod.DEFAULT_BASELINE
        baseline_mod.write_baseline(target, violations)
        print(
            f"statcheck: wrote baseline with "
            f"{len(baseline_mod.group_counts(violations))} group(s) "
            f"({len(violations)} violations) to {target}"
        )
        return 0

    result = None
    new = violations
    if baseline_path and not args.no_baseline:
        try:
            counts = baseline_mod.load_baseline(baseline_path)
        except (OSError, ValueError) as e:
            print(f"statcheck: cannot read baseline {baseline_path}: {e}",
                  file=sys.stderr)
            return 2
        result = baseline_mod.apply_baseline(violations, counts)
        new = result.new

    render = render_json if args.format == "json" else render_text
    print(render(new, result, files_checked))
    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
