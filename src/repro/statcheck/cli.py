"""``python -m repro.statcheck`` — the statcheck command line.

Exit codes: 0 = clean (possibly via baseline), 1 = new violations,
2 = usage or internal error.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.statcheck import baseline as baseline_mod
from repro.statcheck.core import (
    all_rules,
    build_project,
    check_file,
    iter_python_files,
)
from repro.statcheck.reporters import render_json, render_rule_list, render_text
from repro.statcheck.sarif import render_sarif


def _select_rules(select: Optional[str], ignore: Optional[str]):
    rules = all_rules()
    if select:
        wanted = {s.strip() for s in select.split(",") if s.strip()}
        unknown = wanted - set(rules)
        if unknown:
            raise SystemExit(f"statcheck: unknown rule(s): {sorted(unknown)}")
        rules = {k: v for k, v in rules.items() if k in wanted}
    if ignore:
        dropped = {s.strip() for s in ignore.split(",") if s.strip()}
        rules = {k: v for k, v in rules.items() if k not in dropped}
    return list(rules.values())


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.statcheck",
        description="Repo-specific static analysis: determinism, kernel "
        "discipline, numeric safety and API hygiene "
        "(see docs/architecture.md § Static checks).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (sarif = SARIF 2.1.0 for code scanning)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline JSON (default: ./statcheck-baseline.json if present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report every violation",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current violations as the new baseline and exit 0 "
        "(an empty debt set deletes the baseline file)",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="apply mechanical fixes for fixable violations (NUM001 dtype "
        "insertion, DET002 default_rng→as_rng), then re-check",
    )
    parser.add_argument(
        "--incremental", action="store_true",
        help="re-analyze only changed files and their call-graph "
        "dependents, replaying cached results for the rest",
    )
    parser.add_argument(
        "--cache", default=None, metavar="FILE",
        help="incremental cache location (default: ./.statcheck-cache.json)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_list())
        return 0

    try:
        rules = _select_rules(args.select, args.ignore)
    except SystemExit as e:
        print(e, file=sys.stderr)
        return 2

    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing:
        print(f"statcheck: no such path(s): {missing}", file=sys.stderr)
        return 2

    def full_run():
        files = list(iter_python_files(args.paths))
        project = build_project(files)
        out = []
        for f in files:
            out.extend(check_file(f, rules=rules, project=project))
        return out, len(files)

    analyzed_note = ""
    if args.incremental:
        from repro.statcheck.incremental import DEFAULT_CACHE, run_incremental

        inc = run_incremental(
            args.paths, cache_path=args.cache or DEFAULT_CACHE, rules=rules
        )
        violations = inc.violations
        files_checked = len(inc.analyzed) + len(inc.reused)
        analyzed_note = (
            f"[incremental: re-analyzed {len(inc.analyzed)}, "
            f"reused {len(inc.reused)}]"
        )
    else:
        violations, files_checked = full_run()

    if args.fix:
        from repro.statcheck.fix import fix_files

        notes = fix_files(violations)
        for note in notes:
            print(f"statcheck --fix: {note}")
        if notes:
            # The tree changed under us: re-check from scratch so the
            # report (and the exit code) reflect the fixed state.
            violations, files_checked = full_run()

    baseline_path = args.baseline or (
        baseline_mod.DEFAULT_BASELINE
        if os.path.exists(baseline_mod.DEFAULT_BASELINE)
        else None
    )

    if args.write_baseline:
        target = args.baseline or baseline_mod.DEFAULT_BASELINE
        if baseline_mod.write_baseline(target, violations):
            print(
                f"statcheck: wrote baseline with "
                f"{len(baseline_mod.group_counts(violations))} group(s) "
                f"({len(violations)} violations) to {target}"
            )
        else:
            print(f"statcheck: no violations — no baseline needed ({target} removed if it existed)")
        return 0

    result = None
    new = violations
    if baseline_path and not args.no_baseline:
        try:
            counts = baseline_mod.load_baseline(baseline_path)
        except (OSError, ValueError) as e:
            print(f"statcheck: cannot read baseline {baseline_path}: {e}",
                  file=sys.stderr)
            return 2
        result = baseline_mod.apply_baseline(violations, counts)
        new = result.new

    render = {
        "json": render_json,
        "sarif": render_sarif,
        "text": render_text,
    }[args.format]
    print(render(new, result, files_checked))
    if analyzed_note and args.format == "text":
        print(analyzed_note)
    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
