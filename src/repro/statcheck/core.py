"""Rule engine: registry, file contexts, suppressions, and the checker.

Design notes
------------
* A :class:`Rule` sees one :class:`FileContext` (path, parsed tree, source
  lines, resolved import aliases) and yields :class:`Violation` objects.
* Scoping is by *module key*: the repo-relative posix path truncated to
  start at ``repro/`` (so ``src/repro/kernels/base.py`` and a test fixture
  checked with ``virtual_path="src/repro/kernels/x.py"`` scope the same
  way).  Rules declare path prefixes over that key.
* Suppressions: ``# statcheck: disable=RULE[,RULE]`` (or ``disable=all``)
  on the violation's first physical line silences it; a
  ``# statcheck: disable-file=RULE`` line anywhere silences the rule for
  the whole file.  Suppression comments should say *why*.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.statcheck.astutils import build_alias_map

#: Pseudo-rule id used for files that fail to parse.
PARSE_RULE = "PARSE"

# Rule lists stop at the first token that is not a rule id / comma, so a
# trailing justification ("# statcheck: disable=API001 <why>") is allowed.
_RULE_LIST = r"(all|[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
_SUPPRESS_RE = re.compile(r"#\s*statcheck:\s*disable=" + _RULE_LIST)
_SUPPRESS_FILE_RE = re.compile(r"#\s*statcheck:\s*disable-file=" + _RULE_LIST)


@dataclass(frozen=True)
class Violation:
    """One rule hit at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


@dataclass
class FileContext:
    """Everything a rule needs to know about one file."""

    path: str
    tree: ast.Module
    lines: List[str]
    aliases: Dict[str, str] = field(default_factory=dict)

    @property
    def module_key(self) -> str:
        return module_key(self.path)

    def violation(self, node: ast.AST, rule_id: str, message: str) -> Violation:
        return Violation(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=rule_id,
            message=message,
        )


def module_key(path: str) -> str:
    """Scope key: the path from its first ``repro/`` component onward."""
    posix = path.replace(os.sep, "/")
    marker = "/repro/"
    if posix.startswith("repro/"):
        return posix
    idx = posix.find(marker)
    if idx >= 0:
        return posix[idx + 1 :]
    return posix


class Rule:
    """Base class for statcheck rules.

    Subclasses set ``id``/``summary``, optionally ``path_prefixes`` (module
    keys the rule applies to; empty = everywhere under ``repro/``), and
    implement :meth:`check`.
    """

    id: str = ""
    summary: str = ""
    #: Module-key prefixes this rule applies to; () means everywhere.
    path_prefixes: Sequence[str] = ()
    #: Module keys (exact) the rule skips entirely.
    exempt_modules: Sequence[str] = ()

    def applies(self, key: str) -> bool:
        if key in self.exempt_modules:
            return False
        if not self.path_prefixes:
            return True
        return any(key.startswith(p) for p in self.path_prefixes)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register(cls):
    """Class decorator: instantiate and register a rule by its id."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> Dict[str, Rule]:
    """The registered rules, importing the bundled rule modules on demand."""
    # Import for side effect: each module registers its rules at import.
    from repro.statcheck.rules import (  # noqa: F401
        api,
        determinism,
        kernels,
        numeric,
        obs,
        perf,
        reliability,
    )

    return dict(_REGISTRY)


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def _parse_rule_list(raw: str) -> Optional[set]:
    raw = raw.strip()
    if raw == "all":
        return None  # None = every rule
    return {part.strip() for part in raw.split(",") if part.strip()}


def _suppressed(lines: List[str], v: Violation, file_wide: Dict[str, bool]) -> bool:
    if file_wide.get(v.rule_id) or file_wide.get("all"):
        return True
    if 1 <= v.line <= len(lines):
        m = _SUPPRESS_RE.search(lines[v.line - 1])
        if m:
            rules = _parse_rule_list(m.group(1))
            return rules is None or v.rule_id in rules
    return False


def _file_wide_suppressions(lines: List[str]) -> Dict[str, bool]:
    out: Dict[str, bool] = {}
    for line in lines:
        m = _SUPPRESS_FILE_RE.search(line)
        if m:
            rules = _parse_rule_list(m.group(1))
            if rules is None:
                out["all"] = True
            else:
                for r in rules:
                    out[r] = True
    return out


# ----------------------------------------------------------------------
# Checking
# ----------------------------------------------------------------------
def check_source(
    source: str,
    path: str,
    rules: Optional[Iterable[Rule]] = None,
) -> List[Violation]:
    """Check one source string; ``path`` drives rule scoping and reports."""
    try:
        tree = ast.parse(source)
    except SyntaxError as e:
        return [
            Violation(
                path=path,
                line=e.lineno or 1,
                col=e.offset or 0,
                rule_id=PARSE_RULE,
                message=f"file does not parse: {e.msg}",
            )
        ]
    lines = source.splitlines()
    ctx = FileContext(path=path, tree=tree, lines=lines, aliases=build_alias_map(tree))
    file_wide = _file_wide_suppressions(lines)
    if rules is None:
        rules = all_rules().values()
    key = ctx.module_key
    out: List[Violation] = []
    seen = set()
    for rule in rules:
        if not rule.applies(key):
            continue
        for v in rule.check(ctx):
            # One report per (rule, location): nested attribute chains can
            # re-resolve to the same offending expression.
            loc = (v.rule_id, v.line, v.col)
            if loc in seen:
                continue
            seen.add(loc)
            if not _suppressed(lines, v, file_wide):
                out.append(v)
    out.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return out


def check_file(
    path: str,
    virtual_path: Optional[str] = None,
    rules: Optional[Iterable[Rule]] = None,
) -> List[Violation]:
    """Check one file on disk.

    ``virtual_path`` overrides the path used for scoping/reporting — the
    fixture corpus uses it to exercise path-scoped rules from ``tests/``.
    """
    with open(path, encoding="utf-8") as f:
        source = f.read()
    return check_source(source, virtual_path or path, rules=rules)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs.sort()
                dirs[:] = [d for d in dirs if d not in ("__pycache__", ".git")]
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        else:
            yield path


def check_paths(
    paths: Sequence[str],
    rules: Optional[Iterable[Rule]] = None,
) -> List[Violation]:
    """Check every python file under ``paths`` (files or directories)."""
    out: List[Violation] = []
    for f in iter_python_files(paths):
        out.extend(check_file(f, rules=rules))
    return out
