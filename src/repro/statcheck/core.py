"""Rule engine: registry, file contexts, suppressions, and the checker.

Design notes
------------
* A :class:`Rule` sees one :class:`FileContext` (path, parsed tree, source
  lines, resolved import aliases) and yields :class:`Violation` objects.
* Scoping is by *module key*: the repo-relative posix path truncated to
  start at ``repro/`` (so ``src/repro/kernels/base.py`` and a test fixture
  checked with ``virtual_path="src/repro/kernels/x.py"`` scope the same
  way).  Rules declare path prefixes over that key.
* Suppressions: a ``disable=RULE[,RULE]`` comment (prefixed with the
  checker's name, or ``disable=all``) on the violation's first physical
  line silences it; the ``disable-file=RULE`` form anywhere silences the
  rule for the whole file.  Suppression comments should say *why*, and
  ones that silence nothing are themselves flagged (SUP001).
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.statcheck.astutils import build_alias_map
from repro.statcheck.project import ModuleInfo, Project, single_file_project

#: Pseudo-rule id used for files that fail to parse.
PARSE_RULE = "PARSE"

#: Pseudo-rule id for suppression comments that silenced nothing.
UNUSED_SUPPRESSION_RULE = "SUP001"

# Rule lists stop at the first token that is not a rule id / comma, so a
# trailing justification after the rule list is allowed (and encouraged).
_RULE_LIST = r"(all|[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
_SUPPRESS_RE = re.compile(r"#\s*statcheck:\s*disable=" + _RULE_LIST)
_SUPPRESS_FILE_RE = re.compile(r"#\s*statcheck:\s*disable-file=" + _RULE_LIST)


@dataclass(frozen=True)
class Violation:
    """One rule hit at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    #: Optional mechanical fix (compare=False keeps frozen-equality by site).
    fix: Optional[object] = field(default=None, compare=False)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
            "fixable": self.fix is not None,
        }


@dataclass
class FileContext:
    """Everything a rule needs to know about one file.

    ``project`` is the whole-program view (v2): every file of the run,
    parsed and indexed, so flow-based rules can follow calls across module
    boundaries.  Per-file entry points fall back to a single-file project,
    which keeps same-module interprocedural analysis working.
    """

    path: str
    tree: ast.Module
    lines: List[str]
    aliases: Dict[str, str] = field(default_factory=dict)
    project: Optional[Project] = None

    @property
    def module_key(self) -> str:
        return module_key(self.path)

    @property
    def module_info(self) -> Optional[ModuleInfo]:
        """This file's entry in the project (None only if it never parsed)."""
        if self.project is None:
            return None
        return self.project.modules.get(self.module_key)

    def violation(self, node: ast.AST, rule_id: str, message: str) -> Violation:
        return Violation(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=rule_id,
            message=message,
        )


def module_key(path: str) -> str:
    """Scope key: the path from its first ``repro/`` component onward."""
    posix = path.replace(os.sep, "/")
    marker = "/repro/"
    if posix.startswith("repro/"):
        return posix
    idx = posix.find(marker)
    if idx >= 0:
        return posix[idx + 1 :]
    return posix


class Rule:
    """Base class for statcheck rules.

    Subclasses set ``id``/``summary``, optionally ``path_prefixes`` (module
    keys the rule applies to; empty = everywhere under ``repro/``), and
    implement :meth:`check`.
    """

    id: str = ""
    summary: str = ""
    #: Module-key prefixes this rule applies to; () means everywhere.
    path_prefixes: Sequence[str] = ()
    #: Module keys (exact) the rule skips entirely.
    exempt_modules: Sequence[str] = ()

    def applies(self, key: str) -> bool:
        if key in self.exempt_modules:
            return False
        if not self.path_prefixes:
            return True
        return any(key.startswith(p) for p in self.path_prefixes)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register(cls):
    """Class decorator: instantiate and register a rule by its id."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> Dict[str, Rule]:
    """The registered rules, importing the bundled rule modules on demand."""
    # Import for side effect: each module registers its rules at import.
    from repro.statcheck.rules import (  # noqa: F401
        api,
        determinism,
        kernels,
        numeric,
        obs,
        perf,
        reliability,
        serving,
    )

    return dict(_REGISTRY)


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def _parse_rule_list(raw: str) -> Optional[set]:
    raw = raw.strip()
    if raw == "all":
        return None  # None = every rule
    return {part.strip() for part in raw.split(",") if part.strip()}


@dataclass
class _Suppression:
    """One suppression comment, with usage tracking for SUP001."""

    line: int
    col: int
    rules: Optional[set]  # None = all
    file_wide: bool
    used: bool = False

    def covers(self, rule_id: str) -> bool:
        return self.rules is None or rule_id in self.rules


class SuppressionTable:
    """Every ``# statcheck: disable[-file]=`` comment in one file.

    ``check_source`` consults it per violation; suppressions that silenced
    nothing become :data:`UNUSED_SUPPRESSION_RULE` (SUP001) violations —
    a suppression that no longer fires is debt rotting in place.
    """

    def __init__(self, lines: List[str]):
        self.entries: List[_Suppression] = []
        for i, line in enumerate(lines, start=1):
            m = _SUPPRESS_FILE_RE.search(line)
            if m:
                self.entries.append(
                    _Suppression(i, m.start(), _parse_rule_list(m.group(1)), True)
                )
                continue
            m = _SUPPRESS_RE.search(line)
            if m:
                self.entries.append(
                    _Suppression(i, m.start(), _parse_rule_list(m.group(1)), False)
                )

    def suppressed(self, v: Violation) -> bool:
        hit = False
        for s in self.entries:
            if not s.covers(v.rule_id):
                continue
            # A dead waiver must not waive its own unused-warning via
            # ``disable=all``; silencing SUP001 takes naming it.
            if v.rule_id == UNUSED_SUPPRESSION_RULE and s.rules is None:
                continue
            if s.file_wide or s.line == v.line:
                s.used = True
                hit = True
        return hit

    def unused(self, path: str) -> Iterator[Violation]:
        for s in self.entries:
            if s.used:
                continue
            scope = "disable-file" if s.file_wide else "disable"
            what = "all rules" if s.rules is None else ",".join(sorted(s.rules))
            yield Violation(
                path=path,
                line=s.line,
                col=s.col,
                rule_id=UNUSED_SUPPRESSION_RULE,
                message=(
                    f"unused suppression ({scope}={what}): it no longer "
                    "silences any violation — delete the comment so dead "
                    "waivers cannot hide future regressions"
                ),
            )


# ----------------------------------------------------------------------
# Checking
# ----------------------------------------------------------------------
def check_source(
    source: str,
    path: str,
    rules: Optional[Iterable[Rule]] = None,
    project: Optional[Project] = None,
) -> List[Violation]:
    """Check one source string; ``path`` drives rule scoping and reports.

    ``project`` supplies the whole-program view.  Without one, a
    single-file project is built so interprocedural rules still follow
    same-module helper chains.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as e:
        return [
            Violation(
                path=path,
                line=e.lineno or 1,
                col=e.offset or 0,
                rule_id=PARSE_RULE,
                message=f"file does not parse: {e.msg}",
            )
        ]
    key = module_key(path)
    if project is None:
        project = single_file_project(source, path, key)
    elif key not in project.modules:
        project.add_source(source, path, key)
    mod = project.modules.get(key)
    if mod is not None:
        # Share the project's parse: rules mix whole-file AST walks with
        # project-indexed FunctionInfo nodes, and node-identity lookups
        # (call-site exemptions, enclosing-function maps) require both
        # views to be the *same* tree.
        tree, lines, aliases = mod.tree, mod.lines, mod.aliases
    else:
        lines = source.splitlines()
        aliases = build_alias_map(tree)
    ctx = FileContext(
        path=path,
        tree=tree,
        lines=lines,
        aliases=aliases,
        project=project,
    )
    suppressions = SuppressionTable(lines)
    if rules is None:
        rules = all_rules().values()
    out: List[Violation] = []
    seen = set()
    for rule in rules:
        if not rule.applies(key):
            continue
        for v in rule.check(ctx):
            # One report per (rule, location): nested attribute chains can
            # re-resolve to the same offending expression.
            loc = (v.rule_id, v.line, v.col)
            if loc in seen:
                continue
            seen.add(loc)
            if not suppressions.suppressed(v):
                out.append(v)
    for v in suppressions.unused(path):
        if not suppressions.suppressed(v):
            out.append(v)
    out.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return out


def check_file(
    path: str,
    virtual_path: Optional[str] = None,
    rules: Optional[Iterable[Rule]] = None,
    project: Optional[Project] = None,
) -> List[Violation]:
    """Check one file on disk.

    ``virtual_path`` overrides the path used for scoping/reporting — the
    fixture corpus uses it to exercise path-scoped rules from ``tests/``.
    """
    with open(path, encoding="utf-8") as f:
        source = f.read()
    return check_source(source, virtual_path or path, rules=rules, project=project)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs.sort()
                dirs[:] = [d for d in dirs if d not in ("__pycache__", ".git")]
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        else:
            yield path


def build_project(files: Sequence[str]) -> Project:
    """Parse ``files`` into one whole-program :class:`Project`."""
    project = Project()
    for path in files:
        try:
            with open(path, encoding="utf-8") as f:
                source = f.read()
        except OSError:
            continue
        project.add_source(source, path, module_key(path))
    return project


def check_paths(
    paths: Sequence[str],
    rules: Optional[Iterable[Rule]] = None,
) -> List[Violation]:
    """Check every python file under ``paths`` (files or directories),
    sharing one whole-program project across all of them."""
    files = list(iter_python_files(paths))
    project = build_project(files)
    out: List[Violation] = []
    for f in files:
        out.extend(check_file(f, rules=rules, project=project))
    return out
