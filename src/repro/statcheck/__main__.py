"""Entry point for ``python -m repro.statcheck``."""

import sys

from repro.statcheck.cli import main

sys.exit(main())
