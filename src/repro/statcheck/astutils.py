"""Shared AST helpers for the statcheck rules.

The rules reason about *resolved* dotted names: ``np.random.rand`` is
reported as ``numpy.random.rand`` regardless of how numpy was imported, and
``from time import time`` resolves bare ``time()`` calls to ``time.time``.
Resolution is purely lexical (module-level and function-level imports are
merged into one alias table), which is exactly the fidelity a lint needs.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple


def build_alias_map(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the dotted module/object path they were bound to."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports stay unresolved
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def dotted_name(node: ast.AST) -> Optional[str]:
    """Unresolved dotted path of a Name/Attribute chain (else ``None``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolved_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Dotted path with the leading segment resolved through ``aliases``."""
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    head = aliases.get(head, head)
    return f"{head}.{rest}" if rest else head


def call_name(node: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    """Resolved dotted name of a call's callee."""
    return resolved_name(node.func, aliases)


def last_segment(dotted: Optional[str]) -> str:
    return dotted.rsplit(".", 1)[-1] if dotted else ""


def walk_functions(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AST, "ast.FunctionDef | ast.AsyncFunctionDef"]]:
    """Yield ``(parent, function)`` for every def, including methods."""
    parents = {tree: None}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield parents.get(node, tree), node


def names_in(node: ast.AST) -> Iterator[str]:
    """All bare Name ids appearing anywhere inside ``node``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id


def has_keyword(call: ast.Call, name: str) -> bool:
    return any(kw.arg == name for kw in call.keywords)


def keyword_value(call: ast.Call, name: str) -> Optional[ast.AST]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def statements_in_order(body: List[ast.stmt]) -> Iterator[ast.stmt]:
    """Flatten a statement list in document order, descending into compound
    statements (loop/branch bodies) but not into nested function defs."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for field in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, field, None)
            if inner:
                yield from statements_in_order(inner)
        for handler in getattr(stmt, "handlers", []) or []:
            yield from statements_in_order(handler.body)
