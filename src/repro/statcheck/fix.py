"""Mechanical autofixes for a subset of statcheck rules (``--fix``).

Fixes are conservative text edits computed *from reported violations* —
anything suppressed, baselined or scope-exempt is never touched.  Two
families are currently fixable:

* **NUM001** — insert an explicit ``dtype=`` into the flagged constructor:
  ``arange`` gets the index dtype (``int64``), value constructors get
  ``float32`` inside the float32 packages and ``float64`` elsewhere.  The
  spelling follows the file's own numpy alias (``np.int64``) and falls
  back to the string form (``dtype="int64"``) when numpy has no alias.
* **DET002 (default_rng form)** — rewrite ``np.random.default_rng(...)``
  to ``as_rng(...)`` and add the ``from repro.utils.rng import as_rng``
  import if the file does not already have it.

Every edit is single-line and position-anchored; edits apply bottom-up so
earlier offsets stay valid.  The caller re-checks after fixing — a fix
that merely *moves* a violation will honestly show up again.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.statcheck.astutils import build_alias_map, call_name, has_keyword
from repro.statcheck.core import Violation, module_key

#: Rules --fix knows how to repair.
FIXABLE_RULES = ("NUM001", "DET002")

_INDEX_CONSTRUCTORS = {"numpy.arange"}
_VALUE_CONSTRUCTORS = {"numpy.zeros", "numpy.ones", "numpy.empty", "numpy.full"}

_FLOAT32_PACKAGES = (
    "repro/kernels/",
    "repro/gpusim/",
    "repro/layout/",
    "repro/fastpath/",
)

_RNG_IMPORT = "from repro.utils.rng import as_rng"


@dataclass(frozen=True)
class TextEdit:
    """Replace ``[col, end_col)`` of 1-based ``line`` with ``replacement``."""

    line: int
    col: int
    end_col: int
    replacement: str
    note: str


def _numpy_alias(aliases: Dict[str, str]) -> Optional[str]:
    for alias, target in aliases.items():
        if target == "numpy":
            return alias
    return None


def _dtype_spelling(code: str, aliases: Dict[str, str]) -> str:
    np_alias = _numpy_alias(aliases)
    if np_alias is not None:
        return f"{np_alias}.{code}"
    return f'"{code}"'


def _call_at(tree: ast.Module, line: int, col: int) -> Optional[ast.Call]:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and node.lineno == line
            and node.col_offset == col
        ):
            return node
    return None


def _attr_at(tree: ast.Module, line: int, col: int) -> Optional[ast.Attribute]:
    best: Optional[ast.Attribute] = None
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and node.lineno == line
            and node.col_offset == col
            and node.end_lineno == line
        ):
            # Outermost chain node at this anchor (longest span) wins.
            if best is None or node.end_col_offset > best.end_col_offset:
                best = node
    return best


def _num001_edit(
    tree: ast.Module,
    lines: List[str],
    aliases: Dict[str, str],
    key: str,
    v: Violation,
) -> Optional[TextEdit]:
    call = _call_at(tree, v.line, v.col)
    if call is None or has_keyword(call, "dtype"):
        return None
    name = call_name(call, aliases)
    if name in _INDEX_CONSTRUCTORS:
        code = "int64"
    elif name in _VALUE_CONSTRUCTORS:
        code = (
            "float32"
            if any(key.startswith(p) for p in _FLOAT32_PACKAGES)
            else "float64"
        )
    else:
        return None
    end_line, end_col = call.end_lineno, call.end_col_offset
    if end_line > len(lines) or lines[end_line - 1][end_col - 1 : end_col] != ")":
        return None
    spelled = _dtype_spelling(code, aliases)
    prefix = lines[end_line - 1][:end_col - 1].rstrip()
    sep = "" if prefix.endswith((",", "(")) else ", "
    return TextEdit(
        line=end_line,
        col=end_col - 1,
        end_col=end_col - 1,
        replacement=f"{sep}dtype={spelled}",
        note=f"{v.path}:{v.line}: NUM001 → dtype={spelled}",
    )


def _det002_edit(
    tree: ast.Module, lines: List[str], v: Violation
) -> Optional[TextEdit]:
    if "default_rng" not in v.message:
        return None
    attr = _attr_at(tree, v.line, v.col)
    if attr is None or attr.attr != "default_rng":
        return None
    return TextEdit(
        line=v.line,
        col=attr.col_offset,
        end_col=attr.end_col_offset,
        replacement="as_rng",
        note=f"{v.path}:{v.line}: DET002 → as_rng",
    )


def _import_insert_line(tree: ast.Module) -> int:
    """1-based line *after which* to insert a new import."""
    last = 0
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            last = max(last, node.end_lineno or node.lineno)
        elif last:
            break
        elif isinstance(node, ast.Expr) and isinstance(
            node.value, ast.Constant
        ):
            last = node.end_lineno or node.lineno  # module docstring
    return last


def fix_source(
    source: str, path: str, violations: List[Violation]
) -> Tuple[str, List[str]]:
    """Apply every computable fix for ``violations``; returns the new
    source and human-readable notes for what changed."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source, []
    aliases = build_alias_map(tree)
    key = module_key(path)
    lines = source.splitlines(keepends=True)
    bare = [ln.rstrip("\n") for ln in lines]

    edits: List[TextEdit] = []
    needs_rng_import = False
    for v in violations:
        if v.path != path:
            continue
        edit = None
        if v.rule_id == "NUM001":
            edit = _num001_edit(tree, bare, aliases, key, v)
        elif v.rule_id == "DET002":
            edit = _det002_edit(tree, bare, v)
            if edit is not None and "as_rng" not in aliases:
                needs_rng_import = True
        if edit is not None:
            edits.append(edit)

    if not edits:
        return source, []

    # Bottom-up, right-to-left: earlier offsets stay valid.
    notes = [e.note for e in sorted(edits, key=lambda e: (e.line, e.col))]
    for e in sorted(edits, key=lambda e: (e.line, e.col), reverse=True):
        row = lines[e.line - 1]
        lines[e.line - 1] = row[: e.col] + e.replacement + row[e.end_col :]

    if needs_rng_import:
        at = _import_insert_line(tree)
        lines.insert(at, _RNG_IMPORT + "\n")
        notes.append(f"{path}: added `{_RNG_IMPORT}`")
    return "".join(lines), notes


def fix_files(
    violations: List[Violation],
    real_paths: Optional[Dict[str, str]] = None,
) -> List[str]:
    """Group ``violations`` by file, rewrite each file in place.

    ``real_paths`` maps reported (possibly virtual) paths to on-disk
    paths; identity when omitted.  Returns the collected fix notes.
    """
    by_path: Dict[str, List[Violation]] = {}
    for v in violations:
        if v.rule_id in FIXABLE_RULES:
            by_path.setdefault(v.path, []).append(v)
    notes: List[str] = []
    for path, group in sorted(by_path.items()):
        disk = (real_paths or {}).get(path, path)
        try:
            with open(disk, encoding="utf-8") as f:
                source = f.read()
        except OSError:
            continue
        fixed, file_notes = fix_source(source, path, group)
        if fixed != source:
            with open(disk, "w", encoding="utf-8") as f:
                f.write(fixed)
            notes.extend(file_notes)
    return notes
