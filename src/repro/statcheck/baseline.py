"""Checked-in violation baseline for incremental adoption.

The baseline is a JSON map ``"<path>::<rule>" -> count``.  A run fails only
where a (file, rule) group *exceeds* its baselined count — so existing debt
is tolerated, new debt is not, and paying debt down can never fail the
check.  ``python -m repro.statcheck --write-baseline`` refreshes the file;
the policy (enforced by the checked-in file, see CONTRIBUTING.md) is that
``repro/kernels/`` and ``repro/gpusim/`` carry **zero** baseline entries.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.statcheck.core import Violation

DEFAULT_BASELINE = "statcheck-baseline.json"


def _key(path: str, rule_id: str) -> str:
    return f"{path.replace(os.sep, '/')}::{rule_id}"


def group_counts(violations: List[Violation]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for v in violations:
        k = _key(v.path, v.rule_id)
        counts[k] = counts.get(k, 0) + 1
    return counts


def load_baseline(path: str) -> Dict[str, int]:
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    counts = data.get("counts", {})
    return {str(k): int(v) for k, v in counts.items()}


def write_baseline(path: str, violations: List[Violation]) -> bool:
    """Write the baseline for ``violations``; returns True if a file was
    written.  An empty debt set *deletes* the baseline instead of leaving a
    zero-entry file around — no baseline is the steady state, and its
    absence makes "we are clean" visible in the tree."""
    if not violations:
        if os.path.exists(path):
            os.remove(path)
        return False
    payload = {
        "version": 1,
        "note": (
            "statcheck debt baseline: counts of tolerated pre-existing "
            "violations per (file, rule). Regenerate with "
            "`python -m repro.statcheck src --write-baseline`. "
            "Policy: no entries under repro/kernels/ or repro/gpusim/."
        ),
        "counts": dict(sorted(group_counts(violations).items())),
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=1)
        f.write("\n")
    return True


@dataclass
class BaselineResult:
    """Outcome of comparing a run against a baseline."""

    #: Violations in groups that exceed their baselined count.
    new: List[Violation] = field(default_factory=list)
    #: Number of violations absorbed by the baseline.
    absorbed: int = 0
    #: Baseline keys whose debt shrank or vanished (stale entries).
    stale: List[Tuple[str, int, int]] = field(default_factory=list)


def apply_baseline(
    violations: List[Violation], baseline: Dict[str, int]
) -> BaselineResult:
    """Split violations into new-vs-absorbed against ``baseline`` counts."""
    result = BaselineResult()
    groups: Dict[str, List[Violation]] = {}
    for v in violations:
        groups.setdefault(_key(v.path, v.rule_id), []).append(v)
    for key, group in sorted(groups.items()):
        allowed = baseline.get(key, 0)
        if len(group) > allowed:
            result.new.extend(group)
        else:
            result.absorbed += len(group)
    for key, allowed in sorted(baseline.items()):
        actual = len(groups.get(key, ()))
        if actual < allowed:
            result.stale.append((key, allowed, actual))
    return result
