"""SARIF 2.1.0 output for GitHub code scanning.

One run, one tool (``statcheck``), one result per violation.  The emitted
subset sticks to what code scanning actually renders: rule metadata with
short/full descriptions, per-result level + message + one physical
location, and ``partialFingerprints`` so alerts track across pushes even
when line numbers drift.

The shape is pinned by ``tests/data/statcheck-sarif-2.1.0.json`` (a
checked-in skeleton of the spec's required properties) and validated
structurally in ``tests/test_statcheck_tooling.py`` — no jsonschema
dependency needed.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional

from repro.statcheck.core import (
    PARSE_RULE,
    UNUSED_SUPPRESSION_RULE,
    Violation,
    all_rules,
)

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Pseudo-rules that can appear in results without a registered Rule.
_PSEUDO_RULES = {
    PARSE_RULE: "file does not parse",
    UNUSED_SUPPRESSION_RULE: "suppression comment silences nothing",
}


def _fingerprint(v: Violation) -> str:
    """Stable-ish identity for alert tracking: file + rule + message,
    deliberately *excluding* the line number so edits above the finding
    do not open a duplicate alert."""
    h = hashlib.sha256()
    h.update(v.path.encode())
    h.update(b"\0")
    h.update(v.rule_id.encode())
    h.update(b"\0")
    h.update(v.message.encode())
    return h.hexdigest()


def _rule_descriptors(used_ids) -> List[Dict[str, object]]:
    rules = all_rules()
    out: List[Dict[str, object]] = []
    for rule_id in sorted(used_ids):
        if rule_id in rules:
            summary = rules[rule_id].summary
        else:
            summary = _PSEUDO_RULES.get(rule_id, rule_id)
        out.append(
            {
                "id": rule_id,
                "name": rule_id,
                "shortDescription": {"text": summary},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return out


def sarif_log(
    violations: List[Violation], files_checked: int = 0
) -> Dict[str, object]:
    """The SARIF log object (pre-serialisation) for one run."""
    results = []
    for v in violations:
        results.append(
            {
                "ruleId": v.rule_id,
                "level": "error",
                "message": {"text": v.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": v.path.replace("\\", "/"),
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": max(v.line, 1),
                                # SARIF columns are 1-based; ours are 0-based.
                                "startColumn": v.col + 1,
                            },
                        }
                    }
                ],
                "partialFingerprints": {
                    "statcheck/v1": _fingerprint(v),
                },
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "statcheck",
                        "informationUri": (
                            "https://example.invalid/repro/docs/architecture"
                        ),
                        "rules": _rule_descriptors(
                            {v.rule_id for v in violations}
                        ),
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"},
                },
                "results": results,
                "properties": {"filesChecked": files_checked},
            }
        ],
    }


def render_sarif(
    violations: List[Violation],
    baseline=None,  # accepted for reporter-signature parity; unused
    files_checked: int = 0,
) -> str:
    return json.dumps(sarif_log(violations, files_checked), indent=1)
