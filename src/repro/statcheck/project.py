"""Whole-program view for the v2 analyses: modules, imports, call graph.

A :class:`Project` is the parsed closure of every file a run checks.  It
gives the flow-based rules three things the per-file v1 engine could not:

* **module import graph** — which project module a ``repro.x.y`` import
  resolves to, plus the reverse (*dependents*) edges the incremental mode
  uses to decide what a changed file can possibly invalidate;
* **function call graph** — every ``def`` in the project keyed by
  ``(module key, qualname)``, with call expressions resolved through the
  per-file alias tables (bare names, ``from mod import f`` names,
  ``mod.helper`` attribute calls and same-class ``self.method`` calls);
* **summary cache** — memoised per-``(domain, function)`` interprocedural
  summaries (:mod:`repro.statcheck.dataflow`), so a helper analyzed once
  serves every caller.

Projects are cheap: construction only parses and indexes.  All dataflow
work happens lazily when a rule asks for a summary.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.statcheck.astutils import build_alias_map, dotted_name

#: Hard cap on call-chain depth when computing summaries; real helper
#: chains in this repo are 2-4 deep, the cap only guards pathological
#: recursion in fixture inputs.
MAX_CALL_DEPTH = 16


@dataclass
class FunctionInfo:
    """One ``def`` (function or method) somewhere in the project."""

    module: "ModuleInfo"
    qualname: str  # "helper" or "Class.method"
    node: ast.AST  # FunctionDef | AsyncFunctionDef

    @property
    def key(self) -> Tuple[str, str]:
        return (self.module.key, self.qualname)

    @property
    def param_names(self) -> List[str]:
        a = getattr(self.node, "args", None)
        if a is None:  # module-level pseudo-function
            return []
        return [p.arg for p in a.posonlyargs] + [p.arg for p in a.args]


@dataclass
class ModuleInfo:
    """One parsed file plus its local name-resolution tables."""

    key: str  # module key, e.g. "repro/fastpath/engine.py"
    path: str  # path as reported (may be a virtual path)
    tree: ast.Module
    lines: List[str]
    aliases: Dict[str, str] = field(default_factory=dict)
    #: qualname -> FunctionInfo for every def in the module.
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Dotted module names this module imports (``repro.utils.rng``, ...).
    imported_modules: Set[str] = field(default_factory=set)
    #: Module-level ``NAME = expr`` bindings (last one wins), so constants
    #: like ``DT = np.float64`` resolve inside function bodies.
    constants: Dict[str, ast.expr] = field(default_factory=dict)

    @property
    def dotted(self) -> str:
        """Dotted module name for the key (``repro.fastpath.engine``)."""
        stem = self.key[:-3] if self.key.endswith(".py") else self.key
        if stem.endswith("/__init__"):
            stem = stem[: -len("/__init__")]
        return stem.replace("/", ".")


def _index_functions(mod: ModuleInfo) -> None:
    """Fill ``mod.functions`` with qualified names (one class level deep)."""

    def visit(body, prefix: str) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{node.name}"
                # First definition wins (overloads/redefs are rare and the
                # first is the one textual callers see).
                mod.functions.setdefault(
                    qual, FunctionInfo(module=mod, qualname=qual, node=node)
                )
                visit(node.body, f"{qual}.")
            elif isinstance(node, ast.ClassDef):
                visit(node.body, f"{prefix}{node.name}.")

    visit(mod.tree.body, "")
    for node in mod.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                mod.constants[target.id] = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                mod.constants[node.target.id] = node.value


def _imported_modules(tree: ast.Module) -> Set[str]:
    out: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                out.add(a.name)
        elif isinstance(node, ast.ImportFrom):
            if node.module and not node.level:
                out.add(node.module)
                # ``from pkg import mod`` also names pkg.mod; record both so
                # the dependency edge survives either import spelling.
                for a in node.names:
                    if a.name != "*":
                        out.add(f"{node.module}.{a.name}")
    return out


class Project:
    """Parsed closure of the files under analysis."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}  # key -> ModuleInfo
        self._by_dotted: Dict[str, ModuleInfo] = {}
        #: (domain name, module key, qualname) -> summary object.
        self._summaries: Dict[Tuple[str, str, str], object] = {}
        #: Summary keys currently being computed (cycle guard).
        self._in_flight: Set[Tuple[str, str, str]] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_source(self, source: str, path: str, key: str) -> Optional[ModuleInfo]:
        """Parse and index one file; returns None if it does not parse."""
        try:
            tree = ast.parse(source)
        except SyntaxError:
            return None
        mod = ModuleInfo(
            key=key,
            path=path,
            tree=tree,
            lines=source.splitlines(),
            aliases=build_alias_map(tree),
            imported_modules=_imported_modules(tree),
        )
        _index_functions(mod)
        self.modules[key] = mod
        self._by_dotted[mod.dotted] = mod
        return mod

    @classmethod
    def from_sources(cls, sources: Dict[str, Tuple[str, str]]) -> "Project":
        """Build from ``{key: (source, path)}``."""
        project = cls()
        for key, (source, path) in sources.items():
            project.add_source(source, path, key)
        return project

    # ------------------------------------------------------------------
    # Module import graph
    # ------------------------------------------------------------------
    def module_for_dotted(self, dotted: str) -> Optional[ModuleInfo]:
        mod = self._by_dotted.get(dotted)
        if mod is not None:
            return mod
        # ``repro.fastpath`` may resolve to the package __init__.
        return self._by_dotted.get(f"{dotted}.__init__")

    def internal_deps(self, key: str) -> Set[str]:
        """Module keys of project modules that ``key`` imports."""
        mod = self.modules.get(key)
        if mod is None:
            return set()
        deps: Set[str] = set()
        for dotted in mod.imported_modules:
            target = self.module_for_dotted(dotted)
            if target is not None and target.key != key:
                deps.add(target.key)
        return deps

    def dependents_map(self) -> Dict[str, Set[str]]:
        """Reverse import edges: module key -> keys that import it."""
        rev: Dict[str, Set[str]] = {k: set() for k in self.modules}
        for key in self.modules:
            for dep in self.internal_deps(key):
                rev.setdefault(dep, set()).add(key)
        return rev

    def transitive_dependents(self, keys: Set[str]) -> Set[str]:
        """All modules that (transitively) import any of ``keys``."""
        rev = self.dependents_map()
        out: Set[str] = set()
        frontier = list(keys)
        while frontier:
            k = frontier.pop()
            for dep in rev.get(k, ()):
                if dep not in out and dep not in keys:
                    out.add(dep)
                    frontier.append(dep)
        return out

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------
    def resolve_call(
        self, call: ast.Call, mod: ModuleInfo, enclosing: Optional[FunctionInfo] = None
    ) -> Optional[FunctionInfo]:
        """Resolve a call expression to a project function, if it is one.

        Handles, in order: bare names defined in (or imported into) the
        module, ``self.method()`` within the enclosing class, and dotted
        ``alias.attr`` calls where the alias resolves to a project module.
        """
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in mod.functions:
                return mod.functions[name]
            target = mod.aliases.get(name)
            if target and "." in target:
                owner, _, attr = target.rpartition(".")
                owner_mod = self.module_for_dotted(owner)
                if owner_mod is not None:
                    return owner_mod.functions.get(attr)
            return None
        if isinstance(func, ast.Attribute):
            # self.method() / cls.method(): look up within the enclosing class.
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")
                and enclosing is not None
                and "." in enclosing.qualname
            ):
                cls_prefix = enclosing.qualname.rsplit(".", 1)[0]
                hit = mod.functions.get(f"{cls_prefix}.{func.attr}")
                if hit is not None:
                    return hit
            dotted = dotted_name(func.value)
            if dotted is not None:
                head, _, rest = dotted.partition(".")
                head = mod.aliases.get(head, head)
                owner = f"{head}.{rest}" if rest else head
                owner_mod = self.module_for_dotted(owner)
                if owner_mod is not None:
                    return owner_mod.functions.get(func.attr)
        return None

    def calls_in(
        self, fn: FunctionInfo
    ) -> Iterator[Tuple[ast.Call, Optional[FunctionInfo]]]:
        """(call node, resolved project callee or None) inside ``fn``."""
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                yield node, self.resolve_call(node, fn.module, enclosing=fn)

    # ------------------------------------------------------------------
    # Summary cache (used by repro.statcheck.dataflow)
    # ------------------------------------------------------------------
    def summary_cached(self, domain: str, fn: FunctionInfo):
        return self._summaries.get((domain, *fn.key))

    def summary_store(self, domain: str, fn: FunctionInfo, summary) -> None:
        self._summaries[(domain, *fn.key)] = summary

    def summary_begin(self, domain: str, fn: FunctionInfo) -> bool:
        """Mark a summary as in flight; False if already being computed
        (a call cycle — the caller must fall back to the unknown value)."""
        key = (domain, *fn.key)
        if key in self._in_flight:
            return False
        self._in_flight.add(key)
        return True

    def summary_end(self, domain: str, fn: FunctionInfo) -> None:
        self._in_flight.discard((domain, *fn.key))


def analysis_units(mod: ModuleInfo) -> Iterator[FunctionInfo]:
    """Every def in the module plus a ``<module>`` pseudo-function for the
    top-level statements, so module-scope code is analyzed too."""
    yield FunctionInfo(module=mod, qualname="<module>", node=mod.tree)
    yield from mod.functions.values()


def single_file_project(source: str, path: str, key: str) -> Project:
    """Project containing exactly one module (per-file fallback)."""
    project = Project()
    project.add_source(source, path, key)
    return project
