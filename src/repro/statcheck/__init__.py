"""``repro.statcheck`` — repo-specific static analysis for the simulator.

A small Python-AST rule engine plus four rule families that encode the
invariants the reproduction's *performance* conclusions depend on (see
``docs/architecture.md`` § Static checks):

* **DET** (determinism) — all randomness through ``repro.utils.rng``, no
  wall-clock reads, no unordered-set iteration in result-producing code.
* **KRN** (kernel discipline) — global loads in the simulated GPU kernels
  go through ``AddressSpace``/tracker sites, lane writes in divergent
  regions are mask-guarded, and shared-memory staging is fenced by a sync
  before it is read (static race detection over the warp-lockstep DSL).
* **NUM** (numeric safety) — explicit dtypes, no silent float64 upcasts in
  hot packages, checksummed ``.npz`` persistence.
* **API** (hygiene) — experiments route through ``experiments.common``.

Run it as ``python -m repro.statcheck src`` (see :mod:`repro.statcheck.cli`).
"""

from repro.statcheck.core import (
    FileContext,
    Rule,
    Violation,
    all_rules,
    check_file,
    check_paths,
    check_source,
    register,
)

__all__ = [
    "FileContext",
    "Rule",
    "Violation",
    "all_rules",
    "check_file",
    "check_paths",
    "check_source",
    "register",
]
