"""Human-readable and JSON reporters for statcheck runs."""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.statcheck.baseline import BaselineResult
from repro.statcheck.core import Violation, all_rules


def render_text(
    new: List[Violation],
    baseline: Optional[BaselineResult] = None,
    files_checked: int = 0,
) -> str:
    lines = [v.format() for v in new]
    summary = [
        f"statcheck: {len(new)} violation{'s' if len(new) != 1 else ''} "
        f"across {files_checked} file{'s' if files_checked != 1 else ''}"
    ]
    if baseline is not None:
        if baseline.absorbed:
            summary.append(f"({baseline.absorbed} absorbed by baseline)")
        if baseline.stale:
            summary.append(
                f"[{len(baseline.stale)} stale baseline entr"
                f"{'ies' if len(baseline.stale) != 1 else 'y'} — debt paid "
                "down; run --write-baseline to shrink the file]"
            )
    lines.append(" ".join(summary))
    return "\n".join(lines)


def render_json(
    new: List[Violation],
    baseline: Optional[BaselineResult] = None,
    files_checked: int = 0,
) -> str:
    payload: Dict[str, object] = {
        "violations": [v.as_dict() for v in new],
        "count": len(new),
        "files_checked": files_checked,
    }
    if baseline is not None:
        payload["baseline"] = {
            "absorbed": baseline.absorbed,
            "stale": [
                {"key": k, "allowed": a, "actual": c}
                for k, a, c in baseline.stale
            ],
        }
    return json.dumps(payload, indent=1)


def render_rule_list() -> str:
    lines = []
    for rule_id, rule in sorted(all_rules().items()):
        scope = ", ".join(rule.path_prefixes) if rule.path_prefixes else "repro/**"
        lines.append(f"{rule_id}  [{scope}]\n    {rule.summary}")
    return "\n".join(lines)
