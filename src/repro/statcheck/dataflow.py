"""Generic provenance dataflow over the CFG, with function summaries.

The framework is a forward abstract interpretation parameterized by a
*domain* (:class:`Domain`).  Abstract values (:class:`AV`) are powersets:

* ``tags`` — domain facts about the value (``"arr:f64"``, ``"rng:unseeded"``);
* ``params`` — indices of the enclosing function's parameters the value
  may flow from.  Parameter indices are what make summaries compositional:
  a function analyzed once with parameter ``i`` bound to ``AV(params={i})``
  yields a return value whose ``params`` say exactly which arguments flow
  to the result, so a call site can substitute actual argument values
  without re-analyzing the callee.

Joins happen at CFG merge points (both branches of an ``if`` reach the
join), loops iterate to a fixpoint, and per-statement entry states are
recorded on a final stable pass so rules can ask "what did ``x`` hold when
this call executed?".

Interprocedural flow goes through :func:`summarize`: a
:class:`Summary` carries the joined return value plus domain-specific
``facts`` (e.g. "this function samples from parameter 0"), memoised on the
:class:`~repro.statcheck.project.Project` and guarded against call cycles.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.statcheck.astutils import resolved_name
from repro.statcheck.cfg import build_cfg
from repro.statcheck.project import (
    MAX_CALL_DEPTH,
    FunctionInfo,
    Project,
)


@dataclass(frozen=True)
class AV:
    """Abstract value: a set of domain tags + possible parameter origins."""

    tags: frozenset = frozenset()
    params: frozenset = frozenset()

    def join(self, other: "AV") -> "AV":
        if not other.tags and not other.params:
            return self
        if not self.tags and not self.params:
            return other
        return AV(self.tags | other.tags, self.params | other.params)

    def has(self, tag: str) -> bool:
        return tag in self.tags

    def __bool__(self) -> bool:
        return bool(self.tags or self.params)


EMPTY = AV()


def join_all(values) -> AV:
    out = EMPTY
    for v in values:
        out = out.join(v)
    return out


@dataclass
class Summary:
    """Interprocedural summary of one function under one domain."""

    ret: AV = EMPTY
    #: Domain-specific facts, e.g. {"samples_params": frozenset({0})}.
    facts: Dict[str, object] = field(default_factory=dict)


class Domain:
    """Abstract-domain hooks.  Subclasses override what they care about.

    All hooks receive the running :class:`FunctionAnalysis` so they can
    record findings (``analysis.finding(...)``) and caller facts
    (``analysis.facts``).
    """

    name: str = "domain"

    def name_value(self, dotted: str) -> AV:
        """Abstract value of a resolved dotted name (``numpy.float32``)."""
        return EMPTY

    def constant_value(self, node: ast.Constant) -> AV:
        return EMPTY

    def call_value(
        self,
        call: ast.Call,
        dotted: Optional[str],
        args: List[AV],
        kwargs: Dict[str, AV],
        analysis: "FunctionAnalysis",
    ) -> AV:
        """Value of a call that did not resolve to a project function."""
        return EMPTY

    def method_value(
        self,
        call: ast.Call,
        recv: AV,
        attr: str,
        args: List[AV],
        kwargs: Dict[str, AV],
        analysis: "FunctionAnalysis",
    ) -> AV:
        """Value of ``recv.attr(...)`` where ``recv`` evaluated to ``recv``."""
        return EMPTY

    def project_call_value(
        self,
        call: ast.Call,
        callee: FunctionInfo,
        summary: Summary,
        args: List[AV],
        kwargs: Dict[str, AV],
        analysis: "FunctionAnalysis",
    ) -> AV:
        """Value of a call to a project function; default substitutes the
        summary's parameter deps with the actual argument values."""
        return substitute(summary.ret, bind_args(callee, args, kwargs))

    def binop_value(self, node: ast.BinOp, left: AV, right: AV) -> AV:
        return EMPTY

    def element_value(self, container: AV) -> AV:
        """Value of one element of an iterated/subscripted container.
        Provenance tags flow through containers by default."""
        return container

    def collect_facts(self, analysis: "FunctionAnalysis") -> Dict[str, object]:
        """Facts for this function's summary, after its analysis ran."""
        return dict(analysis.facts)


def bind_args(
    callee: FunctionInfo, args: List[AV], kwargs: Dict[str, AV]
) -> Dict[int, AV]:
    """Map callee parameter index -> actual argument abstract value."""
    names = callee.param_names
    offset = 0
    if names and names[0] in ("self", "cls"):
        offset = 1
    bound: Dict[int, AV] = {}
    for i, av in enumerate(args):
        idx = i + offset
        if idx < len(names):
            bound[idx] = av
    for kw, av in kwargs.items():
        if kw in names:
            bound[names.index(kw)] = av
    return bound


def substitute(value: AV, bound: Dict[int, AV]) -> AV:
    """Replace parameter origins in ``value`` with actual argument values."""
    out = AV(value.tags, frozenset())
    for idx in value.params:
        out = out.join(bound.get(idx, EMPTY))
    return out


class FunctionAnalysis:
    """Forward abstract interpretation of one function body."""

    def __init__(
        self,
        fn: FunctionInfo,
        project: Project,
        domain: Domain,
        depth: int = 0,
    ):
        self.fn = fn
        self.project = project
        self.domain = domain
        self.depth = depth
        self.module = fn.module
        self.aliases = fn.module.aliases
        #: (node, message-context) findings recorded by domain hooks.
        self.findings: List[Tuple[ast.AST, str]] = []
        #: Domain facts about this function (feeds its summary).
        self.facts: Dict[str, object] = {}
        self.return_value: AV = EMPTY
        #: id(stmt) -> entry environment, from the final stable pass.
        self._state_before: Dict[int, Dict[str, AV]] = {}
        self._const_stack: set = set()
        self._ran = False

    # ------------------------------------------------------------------
    def run(self) -> "FunctionAnalysis":
        if self._ran:
            return self
        self._ran = True
        cfg = build_cfg(self.fn.node)
        init = self._initial_env()
        entry_env: Dict[int, Dict[str, AV]] = {bid: {} for bid in cfg.blocks}
        entry_env[cfg.entry] = dict(init)
        preds = cfg.preds()
        order = cfg.rpo()

        def transfer_block(bid: int, record: bool) -> Dict[str, AV]:
            env = dict(entry_env[bid])
            for stmt in cfg.blocks[bid].stmts:
                if record:
                    self._state_before[id(stmt)] = dict(env)
                self._transfer(stmt, env, observe=record)
            return env

        changed = True
        iters = 0
        while changed and iters < 50:
            iters += 1
            changed = False
            for bid in order:
                if bid == cfg.entry:
                    merged = dict(init)
                else:
                    merged = {}
                for p in preds[bid]:
                    out_p = transfer_block(p, record=False)
                    for name, av in out_p.items():
                        merged[name] = merged.get(name, EMPTY).join(av)
                if bid == cfg.entry:
                    for name, av in init.items():
                        merged[name] = merged.get(name, EMPTY).join(av)
                if merged != entry_env[bid]:
                    entry_env[bid] = merged
                    changed = True
        # Stable: one recording pass for findings and per-stmt states.
        for bid in order:
            transfer_block(bid, record=True)
        return self

    def _initial_env(self) -> Dict[str, AV]:
        env: Dict[str, AV] = {}
        names = self.fn.param_names
        for i, name in enumerate(names):
            if name in ("self", "cls") and i == 0:
                continue
            env[name] = AV(params=frozenset({i}))
        return env

    # ------------------------------------------------------------------
    def env_at(self, stmt: ast.stmt) -> Dict[str, AV]:
        """Entry environment of a recorded statement ({} if unreached)."""
        return self._state_before.get(id(stmt), {})

    def finding(self, node: ast.AST, context: str = "") -> None:
        """Record a finding (only on the stable recording pass, so fixpoint
        iterations cannot duplicate reports)."""
        if self.observing:
            self.findings.append((node, context))

    # ------------------------------------------------------------------
    # Transfer
    # ------------------------------------------------------------------
    def _transfer(self, stmt: ast.stmt, env: Dict[str, AV], observe: bool) -> None:
        self._observe = observe
        if isinstance(stmt, ast.Assign):
            val = self.eval(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, stmt.value, val, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                val = self.eval(stmt.value, env)
                self._bind(stmt.target, stmt.value, val, env)
        elif isinstance(stmt, ast.AugAssign):
            val = self.eval(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                prev = env.get(stmt.target.id, EMPTY)
                env[stmt.target.id] = prev.join(val)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.return_value = self.return_value.join(
                    self.eval(stmt.value, env)
                )
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            it = self.eval(stmt.iter, env)
            self._bind(stmt.target, None, self.domain.element_value(it), env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                val = self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, None, val, env)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test, env)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test, env)
        elif isinstance(stmt, ast.Match):
            self.eval(stmt.subject, env)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
        elif isinstance(stmt, (ast.Assert, ast.Raise)):
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.expr):
                    self.eval(sub, env)
        elif isinstance(stmt, ast.Delete):
            for t in stmt.targets:
                if isinstance(t, ast.Name):
                    env.pop(t.id, None)

    def _bind(
        self,
        target: ast.AST,
        value_expr: Optional[ast.AST],
        value: AV,
        env: Dict[str, AV],
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            # a, b = x, y maps element-wise when the RHS is a literal tuple.
            if isinstance(value_expr, (ast.Tuple, ast.List)) and len(
                value_expr.elts
            ) == len(target.elts):
                for t, e in zip(target.elts, value_expr.elts):
                    self._bind(t, e, self.eval(e, env), env)
            else:
                elem = self.domain.element_value(value)
                for t in target.elts:
                    self._bind(t, None, elem, env)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, None, value, env)
        # Subscript/attribute targets are opaque stores.

    # ------------------------------------------------------------------
    # Abstract evaluation
    # ------------------------------------------------------------------
    def eval(self, node: ast.AST, env: Dict[str, AV]) -> AV:
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            if node.id in self.aliases:
                return self.domain.name_value(self.aliases[node.id])
            const = self.module.constants.get(node.id)
            if const is not None and node.id not in self._const_stack:
                self._const_stack.add(node.id)
                try:
                    return self.eval(const, {})
                finally:
                    self._const_stack.discard(node.id)
            return self.domain.name_value(node.id)
        if isinstance(node, ast.Attribute):
            dotted = resolved_name(node, self.aliases)
            if dotted is not None:
                av = self.domain.name_value(dotted)
                if av:
                    return av
            self.eval(node.value, env)  # side effects only; attrs are opaque
            return EMPTY
        if isinstance(node, ast.Constant):
            return self.domain.constant_value(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.NamedExpr):
            val = self.eval(node.value, env)
            if isinstance(node.target, ast.Name):
                env[node.target.id] = val
            return val
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            return self.eval(node.body, env).join(self.eval(node.orelse, env))
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left, env)
            right = self.eval(node.right, env)
            return self.domain.binop_value(node, left, right)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand, env)
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value, env)
            self.eval(node.slice, env)
            return self.domain.element_value(base)
        if isinstance(node, ast.Compare):
            self.eval(node.left, env)
            for c in node.comparators:
                self.eval(c, env)
            return EMPTY
        if isinstance(node, ast.BoolOp):
            return join_all(self.eval(v, env) for v in node.values)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return join_all(self.eval(e, env) for e in node.elts)
        if isinstance(node, ast.Dict):
            return join_all(
                self.eval(v, env) for v in node.values if v is not None
            )
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env)
        if isinstance(node, ast.JoinedStr):
            return EMPTY
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            # Comprehensions: evaluate iterables; the element provenance of
            # the produced container joins the element expression under a
            # best-effort env extension with the comprehension targets.
            inner = dict(env)
            for gen in node.generators:
                it = self.eval(gen.iter, env)
                self._bind(gen.target, None, self.domain.element_value(it), inner)
            return self.eval(node.elt, inner)
        if isinstance(node, ast.DictComp):
            inner = dict(env)
            for gen in node.generators:
                it = self.eval(gen.iter, env)
                self._bind(gen.target, None, self.domain.element_value(it), inner)
            return self.eval(node.value, inner)
        if isinstance(node, ast.Await):
            return self.eval(node.value, env)
        if isinstance(node, ast.Lambda):
            return EMPTY
        return EMPTY

    def _eval_call(self, call: ast.Call, env: Dict[str, AV]) -> AV:
        args = [self.eval(a, env) for a in call.args]
        kwargs = {
            kw.arg: self.eval(kw.value, env)
            for kw in call.keywords
            if kw.arg is not None
        }
        for kw in call.keywords:
            if kw.arg is None:
                self.eval(kw.value, env)

        # 1. Project function?
        enclosing = self.fn if self.fn.node is not None else None
        callee = self.project.resolve_call(call, self.module, enclosing=enclosing)
        if callee is not None and callee.node is not self.fn.node:
            if self.depth < MAX_CALL_DEPTH:
                summary = summarize(self.project, self.domain, callee,
                                    depth=self.depth + 1)
            else:
                summary = Summary()
            return self.domain.project_call_value(
                call, callee, summary, args, kwargs, self
            )

        # 2. Method call on an evaluated receiver?
        if isinstance(call.func, ast.Attribute):
            dotted = resolved_name(call.func, self.aliases)
            if dotted is not None:
                av = self.domain.call_value(call, dotted, args, kwargs, self)
                if av:
                    return av
            recv = self.eval(call.func.value, env)
            return self.domain.method_value(
                call, recv, call.func.attr, args, kwargs, self
            )

        # 3. Plain named call.
        dotted = None
        if isinstance(call.func, ast.Name):
            dotted = self.aliases.get(call.func.id, call.func.id)
        else:
            self.eval(call.func, env)
        return self.domain.call_value(call, dotted, args, kwargs, self)

    @property
    def observing(self) -> bool:
        """True on the final stable pass — domains should only record
        findings then, so fixpoint iterations do not duplicate them."""
        return getattr(self, "_observe", False)


def analyze_function(
    fn: FunctionInfo, project: Project, domain: Domain
) -> FunctionAnalysis:
    """Run (and return) the analysis of one function."""
    return FunctionAnalysis(fn, project, domain).run()


def summarize(
    project: Project, domain: Domain, fn: FunctionInfo, depth: int = 0
) -> Summary:
    """Memoised interprocedural summary of ``fn`` under ``domain``."""
    cached = project.summary_cached(domain.name, fn)
    if cached is not None:
        return cached
    if not project.summary_begin(domain.name, fn):
        return Summary()  # call cycle: unknown
    try:
        analysis = FunctionAnalysis(fn, project, domain, depth=depth).run()
        summary = Summary(
            ret=analysis.return_value,
            facts=domain.collect_facts(analysis),
        )
    finally:
        project.summary_end(domain.name, fn)
    project.summary_store(domain.name, fn, summary)
    return summary
