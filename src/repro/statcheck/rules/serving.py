"""SRV rules — deadline discipline in the serving layer.

The fault-tolerant frontdoor sheds load to protect tail latency, and every
shed decision is only defensible if it actually *looked at the clock*: a
``RequestStatus.SHED_*`` response constructed by code that never consulted
the request's deadline (``deadline_s`` / ``slack()`` / ``expired()``) is a
policy bug — it drops traffic for a reason the response claims is
deadline-based but is not.

**SRV001** finds every shed point (a call carrying a ``SHED_*`` status
among its arguments) and requires the enclosing function to consult the
deadline, either directly or transitively through helpers resolved via the
project call graph.  This keeps the check honest when the consultation is
factored out (``self._batcher.take_expired(now)`` two modules away still
counts), which a per-file v1-style rule could not see.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.statcheck.astutils import walk_functions
from repro.statcheck.core import FileContext, Rule, Violation, register
from repro.statcheck.project import MAX_CALL_DEPTH, ModuleInfo, Project

#: Attribute/name accesses that count as consulting the request deadline.
DEADLINE_ATTRS = frozenset({"deadline_s"})

#: Method/function names whose *meaning* is a deadline consultation.
DEADLINE_CALLS = frozenset({"slack", "expired", "take_expired"})


def _shed_points(fn: ast.AST) -> Iterator[ast.Call]:
    """Calls constructing a shed response: any ``SHED_*`` status argument.

    Comparisons (``status == SHED_X``) and bucketing dicts do not count —
    inspecting a shed that already happened needs no deadline.
    """
    stack = [fn]
    while stack:
        node = stack.pop()
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not fn
        ):
            continue  # nested defs are their own analysis units
        stack.extend(ast.iter_child_nodes(node))
        if not isinstance(node, ast.Call):
            continue
        exprs = list(node.args) + [kw.value for kw in node.keywords]
        for expr in exprs:
            if isinstance(expr, ast.Attribute) and expr.attr.startswith("SHED_"):
                yield node
                break
            if isinstance(expr, ast.Name) and expr.id.startswith("SHED_"):
                yield node
                break


def _consults_directly(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute) and node.attr in DEADLINE_ATTRS:
            return True
        if isinstance(node, ast.Name) and node.id in DEADLINE_ATTRS:
            return True
        if isinstance(node, ast.Call):
            callee = node.func
            name = None
            if isinstance(callee, ast.Attribute):
                name = callee.attr
            elif isinstance(callee, ast.Name):
                name = callee.id
            if name in DEADLINE_CALLS:
                return True
    return False


def _consults_deadline(
    fn: ast.AST,
    mod: Optional[ModuleInfo],
    project: Optional[Project],
    enclosing=None,
    _visited: Optional[set] = None,
    _depth: int = 0,
) -> bool:
    """Does ``fn`` consult the deadline, directly or via project helpers?"""
    if _consults_directly(fn):
        return True
    if project is None or mod is None or _depth >= MAX_CALL_DEPTH:
        return False
    visited = _visited if _visited is not None else {id(fn)}
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        callee = project.resolve_call(node, mod, enclosing=enclosing)
        if callee is None or id(callee.node) in visited:
            continue
        visited.add(id(callee.node))
        if _consults_deadline(
            callee.node,
            callee.module,
            project,
            enclosing=callee,
            _visited=visited,
            _depth=_depth + 1,
        ):
            return True
    return False


@register
class ShedWithoutDeadlineRule(Rule):
    id = "SRV001"
    summary = (
        "every SHED_* construction site must consult the request deadline "
        "(deadline_s / slack() / expired()), directly or through helpers "
        "resolved via the call graph"
    )
    path_prefixes = ("repro/serving/",)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        mod = ctx.module_info
        info_by_node = (
            {id(f.node): f for f in mod.functions.values()} if mod else {}
        )
        for _parent, fn in walk_functions(ctx.tree):
            sheds = list(_shed_points(fn))
            if not sheds:
                continue
            if _consults_deadline(
                fn,
                mod,
                ctx.project if mod else None,
                enclosing=info_by_node.get(id(fn)),
            ):
                continue
            for call in sheds:
                yield ctx.violation(
                    call,
                    self.id,
                    f"function {fn.name!r} constructs a SHED_* response but "
                    "never consults the request deadline (deadline_s, "
                    "slack(), expired()) — deadline-labelled sheds must be "
                    "deadline-driven; thread the request deadline to this "
                    "decision point",
                )
