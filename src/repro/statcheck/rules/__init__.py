"""Rule families: determinism (DET), kernel discipline (KRN), numeric
safety (NUM) and API hygiene (API).  Importing a module registers its rules
with :mod:`repro.statcheck.core`."""
