"""NUM rules — dtype and persistence discipline (flow-based since v2).

The paper's layouts are float32 values + int32/int64 indices by design
(§3.1: memory footprint is part of the result).  NumPy's constructors
default to float64/platform int, so an implicit dtype is either a silent
2x memory inflation or a platform-dependent index width.

v2 rebased NUM001/NUM002 on the dtype-flow lattice
(:class:`repro.statcheck.lattices.DtypeDomain`):

* **NUM001** still fires at the constructor, but it is now flow-aware — a
  constructor whose result is immediately ``.astype(<explicit dtype>)``-ed
  is explicit enough, and a ``dtype=dt`` keyword is traced through
  variables and module constants rather than taken on faith.
* **NUM002** follows float64 provenance through assignments, branches,
  returns and *calls*: a helper two modules away that returns a float64
  buffer flags at the call site inside the float32 package, even though
  every individual line looks innocent.  ``dt = np.float64`` two functions
  up the chain is tracked the same way.

Persisted ``.npz`` artifacts must carry per-array CRCs so the integrity
layer (``repro.reliability.integrity``) can catch corruption before it
skews a benchmark (NUM003, unchanged).

**NUM004** guards the precision axis (:mod:`repro.layout.codec`):
quantized code channels (int8/float16 thresholds, uint8 leaf-pool codes)
decode through a *float32* expression, and the fastpath's
dequantize-on-gather replays that exact expression for bit-identity.
Mixing a quantized array into arithmetic or a comparison with a float64
operand silently promotes the decode to float64 — different rounding,
broken bit-identity — so the rule bans the pairing throughout
``repro/layout`` and ``repro/fastpath``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.statcheck.astutils import (
    call_name,
    has_keyword,
    keyword_value,
    last_segment,
    resolved_name,
)
from repro.statcheck.core import FileContext, Rule, Violation, register
from repro.statcheck.dataflow import AV, EMPTY, FunctionAnalysis
from repro.statcheck.lattices import (
    CONSTRUCTORS,
    DtypeDomain,
    arr_codes,
    is_default_dtype,
    is_f64_array,
)
from repro.statcheck.project import analysis_units

#: Constructors whose dtype defaults are platform/precision traps (the
#: NUM001 surface; a subset of the lattice's CONSTRUCTORS table).
DTYPE_REQUIRED = {
    "numpy.zeros",
    "numpy.ones",
    "numpy.empty",
    "numpy.full",
    "numpy.arange",
}

#: Packages where a float64 upcast silently doubles simulated footprints.
#: repro/fastpath traverses the same float32 layouts, so it is held to the
#: same discipline (an upcast there would also copy every node buffer).
FLOAT32_PACKAGES = (
    "repro/kernels/",
    "repro/gpusim/",
    "repro/layout/",
    "repro/fastpath/",
)

SAVERS = {"numpy.savez", "numpy.savez_compressed", "numpy.save"}

_DOMAIN = DtypeDomain()


def _analyses(ctx: FileContext) -> Iterator[FunctionAnalysis]:
    """One finished dtype analysis per function (plus module scope)."""
    mod = ctx.module_info
    if mod is None:
        return
    for unit in analysis_units(mod):
        yield FunctionAnalysis(unit, ctx.project, _DOMAIN).run()


def _stmt_calls(stmt: ast.stmt) -> Iterator[ast.Call]:
    """Call nodes evaluated by ``stmt`` itself (not nested defs)."""
    for node in ast.walk(stmt):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue  # pragma: no cover - defs are separate units
        if isinstance(node, ast.Call):
            yield node


def _recorded_stmts(analysis: FunctionAnalysis) -> Iterator[ast.stmt]:
    """Statements the analysis recorded an entry state for, in order."""
    node = analysis.fn.node
    for stmt in ast.walk(node):
        if isinstance(stmt, ast.stmt) and analysis.env_at(stmt):
            yield stmt
    # env_at() is {} for statements with no live bindings; fall back to a
    # plain walk so calls in those statements are still inspected.


def _iter_stmt_envs(analysis: FunctionAnalysis):
    """(stmt, env) pairs for the analysis's own body, skipping nested defs."""
    body = analysis.fn.node.body

    def walk(stmts):
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(stmt, ast.ClassDef):
                if analysis.fn.qualname == "<module>":
                    continue  # class bodies at module scope: methods are units
                continue
            yield stmt, analysis.env_at(stmt)
            for field_name in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, field_name, None)
                if inner:
                    yield from walk(inner)
            for handler in getattr(stmt, "handlers", []) or []:
                yield from walk(handler.body)
            for case in getattr(stmt, "cases", []) or []:
                yield from walk(case.body)

    yield from walk(body)


@register
class ImplicitDtypeRule(Rule):
    id = "NUM001"
    summary = (
        "array constructors must pass an explicit dtype (float64/platform-"
        "int defaults break the paper's float32/int64 layout contract)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        # Constructor results that are immediately .astype(<resolvable
        # dtype>)-ed are explicit: collect those receivers first.
        explicit_receivers = set()
        analyses = list(_analyses(ctx))
        for analysis in analyses:
            for stmt, env in _iter_stmt_envs(analysis):
                for call in _stmt_calls(stmt):
                    if (
                        isinstance(call.func, ast.Attribute)
                        and call.func.attr == "astype"
                        and isinstance(call.func.value, ast.Call)
                    ):
                        dt_expr = (
                            keyword_value(call, "dtype")
                            or (call.args[0] if call.args else None)
                        )
                        if dt_expr is not None:
                            av = analysis.eval(dt_expr, dict(env))
                            if any(t.startswith("dt:") for t in av.tags):
                                explicit_receivers.add(id(call.func.value))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node, ctx.aliases)
            if name in DTYPE_REQUIRED and not has_keyword(node, "dtype"):
                if id(node) in explicit_receivers:
                    continue
                yield ctx.violation(
                    node,
                    self.id,
                    f"{name}() without dtype= defaults to float64/platform "
                    "int; state the layout dtype explicitly "
                    "(np.float32 values, np.int64 indices)",
                )


@register
class Float64UpcastRule(Rule):
    id = "NUM002"
    summary = (
        "no float64 provenance may flow into kernel/simulator/layout "
        "packages (float32 is part of the modelled memory footprint); "
        "tracked interprocedurally through the dtype lattice"
    )
    path_prefixes = FLOAT32_PACKAGES

    def _flag_call(
        self,
        ctx: FileContext,
        analysis: FunctionAnalysis,
        call: ast.Call,
        env: Dict[str, AV],
    ) -> Optional[Violation]:
        dotted = call_name(call, ctx.aliases)
        # (a) direct float64 scalar/array construction (v1 behaviour)
        if dotted in ("numpy.float64", "numpy.double"):
            return ctx.violation(
                call, self.id, "numpy.float64() upcast in a float32 package"
            )
        # (b) astype whose dtype argument *flows* to float64
        if isinstance(call.func, ast.Attribute) and call.func.attr in (
            "astype",
            "view",
        ):
            dt_expr = keyword_value(call, "dtype") or (
                call.args[0] if call.args else None
            )
            if dt_expr is not None:
                av = analysis.eval(dt_expr, dict(env))
                if "dt:f64" in av.tags:
                    how = (
                        "astype(float64)"
                        if call.func.attr == "astype"
                        else "view(float64)"
                    )
                    return ctx.violation(
                        call,
                        self.id,
                        f"{how} silently doubles the array's simulated "
                        "footprint; keep layouts float32 (the dtype "
                        "argument resolves to float64 through the "
                        "dataflow lattice)",
                    )
            return None
        # (c) dtype= keyword that flows to float64 (variable, constant,
        #     module constant, or parameter three assignments back)
        dval = keyword_value(call, "dtype")
        if dval is not None:
            av = analysis.eval(dval, dict(env))
            if "dt:f64" in av.tags:
                return ctx.violation(
                    call,
                    self.id,
                    "dtype resolves to float64 in a float32 package; the "
                    "memory model assumes 4-byte values",
                )
        # (d) a call (helper, possibly in another module) returning a
        #     float64-provenance array into this package
        callee = None
        if ctx.project is not None and ctx.module_info is not None:
            callee = ctx.project.resolve_call(
                call, ctx.module_info, enclosing=analysis.fn
            )
        if callee is not None:
            av = analysis.eval(call, dict(env))
            if "f64" in arr_codes(av):
                origin = callee.module.key
                kind = "an implicit-dtype" if is_default_dtype(av) else "a float64"
                return ctx.violation(
                    call,
                    self.id,
                    f"call to {callee.qualname}() ({origin}) returns "
                    f"{kind} array that flows into this float32 package; "
                    "fix the producer's dtype or cast at the boundary",
                )
        return None

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for analysis in _analyses(ctx):
            seen = set()
            for stmt, env in _iter_stmt_envs(analysis):
                for call in _stmt_calls(stmt):
                    if id(call) in seen:
                        continue
                    seen.add(id(call))
                    v = self._flag_call(ctx, analysis, call, env)
                    if v is not None:
                        yield v


#: Array dtype codes a non-identity codec stores: int8 thresholds, float16
#: thresholds, uint8 leaf-pool codes, int16 packed-record fields.
QUANTIZED_ARR_CODES = frozenset({"i8", "u8", "i16", "f16"})

#: Packages that build or gather quantized code channels.
QUANTIZED_PACKAGES = ("repro/layout/", "repro/fastpath/")


@register
class QuantizedFloat64MixRule(Rule):
    id = "NUM004"
    summary = (
        "quantized code arrays (int8/float16 channels) must not meet "
        "float64 operands — decode is a float32 contract, and a float64 "
        "promotion breaks build-time/gather-time bit-identity"
    )
    path_prefixes = QUANTIZED_PACKAGES

    @staticmethod
    def _operand_pairs(node: ast.AST):
        if isinstance(node, ast.BinOp):
            yield node.left, node.right
        elif isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            yield from zip(operands, operands[1:])

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for analysis in _analyses(ctx):
            seen = set()
            for stmt, env in _iter_stmt_envs(analysis):
                for node in ast.walk(stmt):
                    if not isinstance(node, (ast.BinOp, ast.Compare)):
                        continue
                    if id(node) in seen:
                        continue
                    seen.add(id(node))
                    for a, b in self._operand_pairs(node):
                        va = analysis.eval(a, dict(env))
                        vb = analysis.eval(b, dict(env))
                        quant = (arr_codes(va) | arr_codes(vb)) & QUANTIZED_ARR_CODES
                        mixed = (
                            arr_codes(va) & QUANTIZED_ARR_CODES
                            and is_f64_array(vb)
                        ) or (
                            arr_codes(vb) & QUANTIZED_ARR_CODES
                            and is_f64_array(va)
                        )
                        if mixed:
                            yield ctx.violation(
                                node,
                                self.id,
                                f"quantized {'/'.join(sorted(quant))} channel "
                                "meets a float64 operand; dequantize through "
                                "the codec's float32 expression instead "
                                "(repro.layout.codec decode_thresholds)",
                            )
                            break


@register
class UnchecksummedSaveRule(Rule):
    id = "NUM003"
    summary = (
        ".npz/.npy persistence must be covered by per-array array_crc32 "
        "checksums (see repro.forest.io)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        has_crc = any(
            (isinstance(n, ast.Name) and n.id == "array_crc32")
            or (isinstance(n, ast.Attribute) and n.attr == "array_crc32")
            or (
                isinstance(n, ast.ImportFrom)
                and any(a.name == "array_crc32" for a in n.names)
            )
            for n in ast.walk(ctx.tree)
        )
        if has_crc:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and call_name(
                node, ctx.aliases
            ) in SAVERS:
                yield ctx.violation(
                    node,
                    self.id,
                    "array persistence without array_crc32 coverage; "
                    "checksum every saved array so load-time integrity "
                    "checks can reject corrupt caches "
                    "(repro.utils.validation.array_crc32)",
                )
