"""NUM rules — dtype and persistence discipline.

The paper's layouts are float32 values + int32/int64 indices by design
(§3.1: memory footprint is part of the result).  NumPy's constructors
default to float64/platform int, so an implicit dtype is either a silent
2x memory inflation or a platform-dependent index width.  Persisted
``.npz`` artifacts must carry per-array CRCs so the integrity layer
(``repro.reliability.integrity``) can catch corruption before it skews a
benchmark.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statcheck.astutils import (
    call_name,
    has_keyword,
    keyword_value,
    last_segment,
    resolved_name,
)
from repro.statcheck.core import FileContext, Rule, Violation, register

#: Constructors whose dtype defaults are platform/precision traps.
DTYPE_REQUIRED = {
    "numpy.zeros",
    "numpy.ones",
    "numpy.empty",
    "numpy.full",
    "numpy.arange",
}

#: Packages where a float64 upcast silently doubles simulated footprints.
#: repro/fastpath traverses the same float32 layouts, so it is held to the
#: same discipline (an upcast there would also copy every node buffer).
FLOAT32_PACKAGES = (
    "repro/kernels/",
    "repro/gpusim/",
    "repro/layout/",
    "repro/fastpath/",
)

SAVERS = {"numpy.savez", "numpy.savez_compressed", "numpy.save"}


@register
class ImplicitDtypeRule(Rule):
    id = "NUM001"
    summary = (
        "array constructors must pass an explicit dtype (float64/platform-"
        "int defaults break the paper's float32/int64 layout contract)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node, ctx.aliases)
            if name in DTYPE_REQUIRED and not has_keyword(node, "dtype"):
                yield ctx.violation(
                    node,
                    self.id,
                    f"{name}() without dtype= defaults to float64/platform "
                    "int; state the layout dtype explicitly "
                    "(np.float32 values, np.int64 indices)",
                )


@register
class Float64UpcastRule(Rule):
    id = "NUM002"
    summary = (
        "no float64 upcasts in kernel/simulator/layout packages "
        "(float32 is part of the modelled memory footprint)"
    )
    path_prefixes = FLOAT32_PACKAGES

    def _is_float64(self, node: ast.AST, ctx: FileContext) -> bool:
        return resolved_name(node, ctx.aliases) in (
            "float",
            "numpy.float64",
            "numpy.double",
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node, ctx.aliases)
            if name in ("numpy.float64", "numpy.double"):
                yield ctx.violation(
                    node, self.id,
                    "numpy.float64() upcast in a float32 package",
                )
                continue
            if last_segment(name) == "astype" and node.args:
                if self._is_float64(node.args[0], ctx):
                    yield ctx.violation(
                        node, self.id,
                        "astype(float64) silently doubles the array's "
                        "simulated footprint; keep layouts float32",
                    )
            dval = keyword_value(node, "dtype")
            if dval is not None and self._is_float64(dval, ctx):
                yield ctx.violation(
                    node, self.id,
                    "dtype=float64 in a float32 package; the memory model "
                    "assumes 4-byte values",
                )


@register
class UnchecksummedSaveRule(Rule):
    id = "NUM003"
    summary = (
        ".npz/.npy persistence must be covered by per-array array_crc32 "
        "checksums (see repro.forest.io)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        has_crc = any(
            (isinstance(n, ast.Name) and n.id == "array_crc32")
            or (isinstance(n, ast.Attribute) and n.attr == "array_crc32")
            or (
                isinstance(n, ast.ImportFrom)
                and any(a.name == "array_crc32" for a in n.names)
            )
            for n in ast.walk(ctx.tree)
        )
        if has_crc:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and call_name(
                node, ctx.aliases
            ) in SAVERS:
                yield ctx.violation(
                    node,
                    self.id,
                    "array persistence without array_crc32 coverage; "
                    "checksum every saved array so load-time integrity "
                    "checks can reject corrupt caches "
                    "(repro.utils.validation.array_crc32)",
                )
