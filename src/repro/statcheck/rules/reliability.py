"""REL rules — fault-handling code may not swallow faults.

The reliability and serving layers exist to *classify* failures: transient
launch faults retry, integrity faults degrade, deadline faults shed, and
anything else must surface as a bug.  A bare ``except:`` (or an
``except Exception:`` whose body is just ``pass``) erases that
classification — a genuine defect gets recorded as a success and the
wrong-answer counter the chaos soak gates on stops meaning anything.
REL001 bans both shapes inside ``repro/serving/`` and
``repro/reliability/``; handlers there must name the fault types they
expect and do something with everything else (re-raise, wrap in a typed
error, or record a typed shed).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statcheck.astutils import dotted_name
from repro.statcheck.core import FileContext, Rule, Violation, register

#: Modules where fault classification is the whole job.
RELIABILITY_PREFIXES = ("repro/serving/", "repro/reliability/")

#: Catch-all exception classes: catching these with an empty body is
#: indistinguishable from a bare ``except:``.
CATCH_ALL = {"Exception", "BaseException"}


def _is_catch_all(expr: ast.expr) -> bool:
    """True if the handler type includes Exception/BaseException."""
    if isinstance(expr, ast.Tuple):
        return any(_is_catch_all(e) for e in expr.elts)
    name = dotted_name(expr)
    return name in CATCH_ALL or (
        name is not None and name.split(".")[-1] in CATCH_ALL
    )


def _swallows(body) -> bool:
    """True if the handler body does nothing with the exception."""
    return all(
        isinstance(stmt, ast.Pass)
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )
        for stmt in body
    )


@register
class SwallowedFaultRule(Rule):
    id = "REL001"
    summary = (
        "reliability/serving code may not use bare `except:` or swallow "
        "catch-all exceptions with `pass`; name the fault types"
    )
    path_prefixes = RELIABILITY_PREFIXES

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.violation(
                    node,
                    self.id,
                    "bare `except:` catches SystemExit/KeyboardInterrupt "
                    "and erases fault classification; name the expected "
                    "fault types (TransientKernelError, "
                    "DeadlineExceededError, LayoutIntegrityError, "
                    "ExecutionError, ...)",
                )
            elif _is_catch_all(node.type) and _swallows(node.body):
                yield ctx.violation(
                    node,
                    self.id,
                    "`except Exception: pass` records a genuine defect as "
                    "a success; re-raise, wrap in a typed error, or count "
                    "a typed shed instead",
                )
