"""API rules — experiment-harness hygiene.

Every table/figure module must obtain data and forests through
``repro.experiments.common``: that is where scale validation, dataset
memoisation and the on-disk forest cache live.  A module that trains or
loads directly gets silently different (uncached, unvalidated) inputs and
breaks wall-clock parity across experiments that share forests.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statcheck.astutils import call_name, last_segment
from repro.statcheck.core import FileContext, Rule, Violation, register

EXPERIMENTS_PREFIX = ("repro/experiments/",)
EXEMPT = ("repro/experiments/common.py", "repro/experiments/__init__.py")

#: Callables that bypass the harness cache when used outside common.py.
CACHE_BYPASS = {
    "repro.datasets.profiles.load_dataset",
    "repro.forest.io.load_forest",
    "repro.forest.io.save_forest",
    "repro.forest.random_forest.RandomForestClassifier",
}

#: common.py helpers that constitute "going through the harness".
COMMON_HELPERS = {
    "get_scale",
    "get_dataset",
    "get_forest",
    "band_depths",
    "queries_for",
    "execute",
    "get_session",
    "get_planner",
}

#: Module prefixes whose import from an experiment means it instantiates
#: kernels itself instead of going through the runtime seam.
KERNEL_MODULE_PREFIXES = ("repro.kernels", "repro.baselines")


@register
class CachingBypassRule(Rule):
    id = "API001"
    summary = (
        "experiments must use experiments.common (get_dataset/get_forest) "
        "instead of training or loading directly"
    )
    path_prefixes = EXPERIMENTS_PREFIX
    exempt_modules = EXEMPT

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node, ctx.aliases)
            if name in CACHE_BYPASS or last_segment(name) in {
                last_segment(b) for b in CACHE_BYPASS
            }:
                yield ctx.violation(
                    node,
                    self.id,
                    f"direct {last_segment(name)}() call bypasses the "
                    "experiment cache and its input validation; use "
                    "repro.experiments.common.get_dataset/get_forest",
                )


@register
class UnvalidatedEntryRule(Rule):
    id = "API002"
    summary = (
        "experiment run() entry points must resolve inputs through "
        "experiments.common (validated scales, memoised data)"
    )
    path_prefixes = EXPERIMENTS_PREFIX
    exempt_modules = EXEMPT

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        # (a) a top-level run() that never touches the common helpers
        for node in ctx.tree.body:
            if isinstance(node, ast.FunctionDef) and node.name == "run":
                uses_common = any(
                    isinstance(sub, ast.Call)
                    and last_segment(call_name(sub, ctx.aliases))
                    in COMMON_HELPERS
                    for sub in ast.walk(node)
                )
                if not uses_common:
                    yield ctx.violation(
                        node,
                        self.id,
                        "run() does not call any experiments.common helper "
                        "(get_scale/get_dataset/get_forest/...); scale and "
                        "dataset inputs are unvalidated and uncached",
                    )
        # (b) indexing SCALES directly skips get_scale's validation
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id == "SCALES"
            ):
                yield ctx.violation(
                    node,
                    self.id,
                    "SCALES[...] subscript bypasses get_scale()'s "
                    "validation; unknown scale names should raise the "
                    "harness's KeyError with available choices",
                )


def _is_kernel_module(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in KERNEL_MODULE_PREFIXES
    )


@register
class KernelImportRule(Rule):
    id = "API003"
    summary = (
        "experiments must not import kernel classes directly; execution "
        "goes through the runtime seam (experiments.common.execute / "
        "repro.runtime)"
    )
    path_prefixes = EXPERIMENTS_PREFIX
    exempt_modules = EXEMPT

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if _is_kernel_module(alias.name):
                        yield ctx.violation(
                            node,
                            self.id,
                            f"import of {alias.name} binds an experiment to "
                            "a concrete kernel; compile a plan and run it "
                            "via experiments.common.execute (repro.runtime)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module is not None and _is_kernel_module(node.module):
                    yield ctx.violation(
                        node,
                        self.id,
                        f"import from {node.module} binds an experiment to "
                        "a concrete kernel; compile a plan and run it via "
                        "experiments.common.execute (repro.runtime)",
                    )
