"""PERF rules — the fast path must stay vectorized.

:mod:`repro.fastpath` exists because per-row / per-warp Python loops are
what make the trace kernels orders of magnitude too slow to serve.  The
fast path's whole contract is "no Python-level iteration over data":
traversals are level-synchronous ``while`` loops over compact NumPy index
arrays, bounded by tree depth, never by batch size.  PERF001 enforces
that structurally — any ``for`` statement (or comprehension/generator,
which is the same loop wearing sugar) in a ``repro/fastpath`` module is a
regression that silently reintroduces O(rows) interpreter time.  Scalar
iteration that is genuinely bounded by a constant (e.g. a fixed retry
count) should live outside this package; depth-bounded stepping uses
``while`` with array compaction, which the rule permits.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statcheck.core import FileContext, Rule, Violation, register

#: The vectorization-contract package.
FASTPATH_PREFIXES = ("repro/fastpath/",)

#: Statement/expression forms that iterate in the interpreter.
_LOOP_NODES = (
    ast.For,
    ast.AsyncFor,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)

_LOOP_LABEL = {
    ast.For: "`for` loop",
    ast.AsyncFor: "`async for` loop",
    ast.ListComp: "list comprehension",
    ast.SetComp: "set comprehension",
    ast.DictComp: "dict comprehension",
    ast.GeneratorExp: "generator expression",
}


@register
class PythonLoopInFastpathRule(Rule):
    id = "PERF001"
    summary = (
        "repro/fastpath modules may not use Python `for` loops or "
        "comprehensions; traversal must be array-oriented (while + "
        "gather/where over compact index arrays)"
    )
    path_prefixes = FASTPATH_PREFIXES

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, _LOOP_NODES):
                yield ctx.violation(
                    node,
                    self.id,
                    f"{_LOOP_LABEL[type(node)]} in a fastpath module "
                    "iterates per element in the interpreter; express it "
                    "as a vectorized NumPy operation (or a "
                    "depth-bounded `while` over a compacted index array)",
                )
