"""OBS rules — every experiment leaves a machine-readable receipt.

The observability layer (:mod:`repro.obs`) can only diff runs that wrote a
manifest.  A table/figure module whose ``main()`` prints a table and
returns is invisible to ``python -m repro.obs diff`` — its numbers exist
only in scrollback.  OBS001 closes that gap statically: any experiment
entry point must route its rows through
:func:`repro.experiments.common.emit_manifest`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statcheck.astutils import call_name, last_segment
from repro.statcheck.core import FileContext, Rule, Violation, register

EXPERIMENTS_PREFIX = ("repro/experiments/",)

#: Harness plumbing, not experiment entry points: common.py *implements*
#: emit_manifest, cli.py/report.py orchestrate modules that already emit.
EXEMPT = (
    "repro/experiments/common.py",
    "repro/experiments/cli.py",
    "repro/experiments/report.py",
    "repro/experiments/__init__.py",
)


@register
class RunManifestRule(Rule):
    id = "OBS001"
    summary = (
        "experiment entry points (modules with a main()) must write a run "
        "manifest via experiments.common.emit_manifest"
    )
    path_prefixes = EXPERIMENTS_PREFIX
    exempt_modules = EXEMPT

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        mains = [
            n
            for n in ctx.tree.body
            if isinstance(n, ast.FunctionDef) and n.name == "main"
        ]
        if not mains:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node, ctx.aliases)
            if name and last_segment(name) == "emit_manifest":
                return
        yield ctx.violation(
            mains[0],
            self.id,
            "main() never calls experiments.common.emit_manifest; every "
            "experiment entry point must leave a JSONL run manifest so "
            "`python -m repro.obs diff` can compare runs",
        )
