"""OBS rules — every experiment leaves a machine-readable receipt.

The observability layer (:mod:`repro.obs`) can only diff runs that wrote a
manifest.  A table/figure module whose ``main()`` prints a table and
returns is invisible to ``python -m repro.obs diff`` — its numbers exist
only in scrollback.  OBS001 closes that gap statically: any experiment
entry point must route its rows through
:func:`repro.experiments.common.emit_manifest`.

OBS002 guards the hook dispatch itself: observer hooks guarded by string
``hasattr(obs, "on_...")`` checks silently drop events when a hook name is
typo'd — a misspelled hook is indistinguishable from an observer that
opted out.  The typed :class:`repro.obs.protocol.Observer` surface
(adapted once via ``ensure_observer``) makes the same mistake an
``AttributeError`` at adapter-construction or a visible no-op, so the
string-probing pattern is banned repo-wide.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statcheck.astutils import call_name, last_segment
from repro.statcheck.core import FileContext, Rule, Violation, register

EXPERIMENTS_PREFIX = ("repro/experiments/",)

#: Harness plumbing, not experiment entry points: common.py *implements*
#: emit_manifest, cli.py/report.py orchestrate modules that already emit.
EXEMPT = (
    "repro/experiments/common.py",
    "repro/experiments/cli.py",
    "repro/experiments/report.py",
    "repro/experiments/__init__.py",
)


@register
class RunManifestRule(Rule):
    id = "OBS001"
    summary = (
        "experiment entry points (modules with a main()) must write a run "
        "manifest via experiments.common.emit_manifest"
    )
    path_prefixes = EXPERIMENTS_PREFIX
    exempt_modules = EXEMPT

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        mains = [
            n
            for n in ctx.tree.body
            if isinstance(n, ast.FunctionDef) and n.name == "main"
        ]
        if not mains:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node, ctx.aliases)
            if name and last_segment(name) == "emit_manifest":
                return
        yield ctx.violation(
            mains[0],
            self.id,
            "main() never calls experiments.common.emit_manifest; every "
            "experiment entry point must leave a JSONL run manifest so "
            "`python -m repro.obs diff` can compare runs",
        )


@register
class DuckTypedHookRule(Rule):
    id = "OBS002"
    summary = (
        "observer hooks must not be dispatched through string hasattr "
        "probes; adapt once via repro.obs.protocol.ensure_observer"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or len(node.args) < 2:
                continue
            name = call_name(node, ctx.aliases)
            if not name or last_segment(name) != "hasattr":
                continue
            probe = node.args[1]
            if not (
                isinstance(probe, ast.Constant)
                and isinstance(probe.value, str)
                and probe.value.startswith("on_")
            ):
                continue
            yield ctx.violation(
                node,
                self.id,
                f'hasattr(..., "{probe.value}") duck-types an observer '
                "hook: a typo'd hook name silently disables observability. "
                "Adapt the observer once with "
                "repro.obs.protocol.ensure_observer and call the hook "
                "directly",
            )
