"""DET rules — the bit-exact-reproduction invariants.

Every result the repo publishes (EXPERIMENTS.md, calibration tables) must be
a pure function of explicit seeds: the same seed must yield the same forest,
layout and simulated trace on any machine.  These rules ban the three ways
that property silently breaks: wall-clock reads, legacy global-state
randomness, and iteration order that depends on hash seeds.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statcheck.astutils import call_name, dotted_name, resolved_name
from repro.statcheck.core import FileContext, Rule, Violation, register
from repro.statcheck.dataflow import FunctionAnalysis
from repro.statcheck.lattices import RngDomain
from repro.statcheck.project import analysis_units

#: Wall-clock sources: never legitimate in result-producing code.
WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.ctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Monotonic timers: fine for progress printing, but only in modules whose
#: job is wall-clock reporting — results themselves must not depend on them.
MONOTONIC = {
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
}

#: Modules allowed to use monotonic timers.  Exactly one: the sanctioned
#: clock seam (repro.utils.clock).  Everything else — CLI progress printing
#: included — must go through its Stopwatch/MonotonicClock wrappers, so
#: wall-clock access stays greppable at a single site.
TIMING_ALLOWLIST = frozenset(
    {
        "repro/utils/clock.py",
    }
)

#: Legacy numpy.random module-level functions (global-state RNG).
LEGACY_NP_RANDOM = {
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "ranf",
    "sample",
    "seed",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "standard_normal",
    "exponential",
    "poisson",
    "binomial",
    "get_state",
    "set_state",
    "RandomState",
}

#: numpy.random members that are part of the sanctioned Generator API.
ALLOWED_NP_RANDOM = {"Generator", "SeedSequence", "BitGenerator", "PCG64"}

#: Other nondeterministic entropy sources.
OTHER_ENTROPY = {"os.urandom", "uuid.uuid1", "uuid.uuid4"}

#: The one module allowed to call numpy.random.default_rng directly — it
#: *is* the sanctioned wrapper.
RNG_MODULE = "repro/utils/rng.py"


@register
class WallClockRule(Rule):
    id = "DET001"
    summary = (
        "wall-clock reads (time.time, datetime.now) are banned; monotonic "
        "timers only in allowlisted timing modules"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node, ctx.aliases)
            if name in WALL_CLOCK:
                yield ctx.violation(
                    node,
                    self.id,
                    f"{name}() is a wall-clock read; use time.perf_counter() "
                    "for durations or pass timestamps in explicitly",
                )
            elif name in MONOTONIC and ctx.module_key not in TIMING_ALLOWLIST:
                yield ctx.violation(
                    node,
                    self.id,
                    f"{name}() in a result-producing module; timing belongs "
                    "in the allowlisted CLI/reporting layer "
                    f"({', '.join(sorted(TIMING_ALLOWLIST))})",
                )


@register
class LegacyRandomRule(Rule):
    id = "DET002"
    summary = (
        "global-state randomness is banned; route seeds through "
        "repro.utils.rng.as_rng / spawn_rngs"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            name = resolved_name(node, ctx.aliases)
            if name is None:
                continue
            # Stdlib random: flag any use of a name that an import bound to
            # the random module (``import random`` / ``from random import
            # shuffle``).  Duplicate hits along one attribute chain collapse
            # in check_source's (line, col) dedupe.
            raw = dotted_name(node) or ""
            mapped = ctx.aliases.get(raw.split(".", 1)[0])
            if mapped == "random" or (mapped or "").startswith("random."):
                yield ctx.violation(
                    node,
                    self.id,
                    f"stdlib {name} uses hidden global RNG state; use "
                    "repro.utils.rng.as_rng(seed) and Generator methods",
                )
                continue
            if name.startswith("numpy.random."):
                member = name.split(".", 2)[2].split(".")[0]
                if member in LEGACY_NP_RANDOM:
                    yield ctx.violation(
                        node,
                        self.id,
                        f"legacy {name} uses hidden global RNG state; use "
                        "repro.utils.rng.as_rng(seed) and Generator methods",
                    )
                elif (
                    member == "default_rng" and ctx.module_key != RNG_MODULE
                ):
                    yield ctx.violation(
                        node,
                        self.id,
                        "call repro.utils.rng.as_rng instead of "
                        "numpy.random.default_rng so SeedLike inputs are "
                        "normalised consistently",
                    )
            elif name in OTHER_ENTROPY:
                yield ctx.violation(
                    node,
                    self.id,
                    f"{name} is a nondeterministic entropy source",
                )


_RNG_DOMAIN = RngDomain()


@register
class UnseededSamplingRule(Rule):
    id = "DET004"
    summary = (
        "sampling must not be reachable from an unseeded Generator; track "
        "RNG provenance through assignments and helper calls "
        "(as_rng(None)/default_rng() taint, explicit seeds clear)"
    )
    #: The sanctioned wrapper itself constructs from fresh entropy when the
    #: caller *asks* for it; the taint is charged at its call sites instead.
    exempt_modules = (RNG_MODULE,)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        mod = ctx.module_info
        if mod is None:
            return
        for unit in analysis_units(mod):
            analysis = FunctionAnalysis(unit, ctx.project, _RNG_DOMAIN).run()
            for node, context in analysis.findings:
                where = (
                    f"{context}() draws" if context else "a sampling call draws"
                )
                yield ctx.violation(
                    node,
                    self.id,
                    f"{where} from a Generator whose provenance is unseeded "
                    "(as_rng(None)/default_rng() with no explicit seed); "
                    "results become irreproducible — thread a seed through "
                    "repro.utils.rng.as_rng",
                )


def _is_set_expr(node: ast.AST, aliases) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return call_name(node, aliases) in ("set", "frozenset")
    return False


@register
class UnorderedIterationRule(Rule):
    id = "DET003"
    summary = (
        "iterating a set has hash-seed-dependent order; wrap in sorted()"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            iters = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call) and call_name(
                node, ctx.aliases
            ) in ("enumerate", "list", "tuple", "zip", "map"):
                iters.extend(node.args)
            for it in iters:
                if _is_set_expr(it, ctx.aliases):
                    yield ctx.violation(
                        it,
                        self.id,
                        "iteration over a set is unordered (PYTHONHASHSEED-"
                        "dependent for str keys); wrap in sorted() to make "
                        "downstream results reproducible",
                    )
