"""KRN rules — discipline for the warp-lockstep kernel DSL.

The simulated kernels under ``src/repro/kernels/`` are the repo's measuring
instruments: their coalescing/divergence counters *are* the paper's Fig. 8
evidence.  Three invariants keep those counters truthful:

* **KRN001** — every global load of a layout array must flow through an
  ``AddressSpace.addr`` + ``CoalescingTracker.record`` site; a raw
  ``layout.x[idx]`` read in an instrumented kernel silently drops traffic
  from the coalescing model.
* **KRN002** — inside a divergent region (a lock-step loop driven by
  ``np.any(mask)``) every write to a per-lane state array must be guarded
  by an active-mask index; an unmasked write corresponds to inactive CUDA
  lanes mutating state.
* **KRN003** — a cooperative shared-memory staging write must be separated
  from the first shared-memory read by a block synchronisation (the
  ``__syncthreads()`` analogue), otherwise the simulated kernel encodes a
  read-after-write shared-memory race.

The detector works on DSL markers rather than types: staging writes are
``metrics.bytes_staged_shared`` accumulations, shared reads are
``metrics.shared_load_requests`` accumulations, and syncs are calls whose
name contains ``sync`` (``WarpGrid.record_sync``) or accumulations naming a
``*SYNC*`` cycle constant.  Since v2, helper calls are inlined recursively
through the project call graph (cycle-guarded), so staging/traversal
helpers are followed to any depth — including helpers imported from
sibling kernel modules.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.statcheck.astutils import (
    dotted_name,
    keyword_value,
    last_segment,
    names_in,
    walk_functions,
)
from repro.statcheck.core import FileContext, Rule, Violation, register

KERNEL_PREFIX = ("repro/kernels/",)

#: Importing either of these marks a module as an *instrumented* kernel —
#: one whose loads must be visible to the coalescing model.  Work-item
#: counters (traversal_stats, the FPGA kernels) are exempt by construction.
INSTRUMENTED_IMPORTS = {"AddressSpace", "CoalescingTracker"}

#: Parameter names conventionally holding active-lane masks.
MASK_PARAM_NAMES = frozenset(
    {"active", "present", "walking", "inner", "crossing", "stay", "mask",
     "alive", "in_stage1"}
)


def _module_imports(tree: ast.Module) -> set:
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            names.update(a.asname or a.name for a in node.names)
    return names


@register
class UntrackedGlobalAccessRule(Rule):
    id = "KRN001"
    summary = (
        "instrumented kernels must route layout-array loads through "
        "AddressSpace.addr / tracker.record sites"
    )
    path_prefixes = KERNEL_PREFIX

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not (INSTRUMENTED_IMPORTS & _module_imports(ctx.tree)):
            return
        for _parent, fn in walk_functions(ctx.tree):
            raw_loads: List[ast.Subscript] = []
            tracked = False
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    callee = last_segment(dotted_name(node.func))
                    if callee in ("record", "addr"):
                        tracked = True
                elif isinstance(node, ast.Subscript) and isinstance(
                    node.ctx, ast.Load
                ):
                    base = node.value
                    if (
                        isinstance(base, ast.Attribute)
                        and isinstance(base.value, ast.Name)
                        and base.value.id == "layout"
                    ):
                        raw_loads.append(node)
            if raw_loads and not tracked:
                seen_lines = set()
                for sub in raw_loads:
                    if sub.lineno in seen_lines:
                        continue
                    seen_lines.add(sub.lineno)
                    yield ctx.violation(
                        sub,
                        self.id,
                        f"function {fn.name!r} reads "
                        f"layout.{sub.value.attr}[...] without any "
                        "AddressSpace.addr/tracker.record site — this "
                        "traffic is invisible to the coalescing model",
                    )


# ----------------------------------------------------------------------
# KRN002 — unmasked lane writes under divergence
# ----------------------------------------------------------------------
def _collect_mask_names(fn: ast.AST) -> set:
    """Names plausibly holding boolean lane masks (or mask-derived index
    arrays such as ``np.flatnonzero(mask)`` results)."""
    masks = {a.arg for a in fn.args.args if a.arg in MASK_PARAM_NAMES}

    def is_masky(expr: ast.AST) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Compare):
                return True
            if isinstance(node, ast.UnaryOp) and isinstance(
                node.op, (ast.Invert, ast.Not)
            ):
                return True
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitAnd, ast.BitOr)
            ):
                return True
            if isinstance(node, ast.Call):
                callee = last_segment(dotted_name(node.func))
                if callee in ("flatnonzero", "nonzero", "isnan", "isfinite",
                              "isinf", "logical_and", "logical_or",
                              "logical_not"):
                    return True
                dval = keyword_value(node, "dtype")
                if dval is not None and last_segment(dotted_name(dval)) in (
                    "bool", "bool_",
                ):
                    return True
                # mask.copy() / subscripting a mask propagates maskiness
                if callee == "copy" and isinstance(node.func, ast.Attribute):
                    if last_segment(dotted_name(node.func.value)) in masks:
                        return True
            if isinstance(node, ast.Name) and node.id in masks:
                return True
        return False

    # Two passes so masks defined from other masks resolve regardless of
    # textual order within loops.
    for _ in range(2):
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                tgt = node.targets[0]
                if isinstance(tgt, ast.Name) and is_masky(node.value):
                    masks.add(tgt.id)
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.BitAnd, ast.BitOr)
            ):
                if isinstance(node.target, ast.Name):
                    masks.add(node.target.id)
    return masks


def _divergent_loops(fn: ast.AST) -> Iterator[ast.AST]:
    """Loops modelling lock-step execution over an active-lane mask."""
    for node in ast.walk(fn):
        if isinstance(node, (ast.While, ast.For)):
            probe = [node.test] if isinstance(node, ast.While) else node.body
            for sub in probe if isinstance(probe, list) else [probe]:
                found = any(
                    isinstance(c, ast.Call)
                    and last_segment(dotted_name(c.func)) in ("any", "count_nonzero")
                    for c in ast.walk(sub)
                )
                if found:
                    yield node
                    break


@register
class UnmaskedDivergentWriteRule(Rule):
    id = "KRN002"
    summary = (
        "per-lane writes inside divergent lock-step loops must be guarded "
        "by an active-mask index"
    )
    path_prefixes = KERNEL_PREFIX

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for _parent, fn in walk_functions(ctx.tree):
            masks = _collect_mask_names(fn)
            reported = set()
            for loop in _divergent_loops(fn):
                for node in ast.walk(loop):
                    target = None
                    if isinstance(node, ast.Assign):
                        for t in node.targets:
                            if isinstance(t, ast.Subscript):
                                target = t
                    elif isinstance(node, ast.AugAssign) and isinstance(
                        node.target, ast.Subscript
                    ):
                        target = node.target
                    if target is None or not isinstance(target.value, ast.Name):
                        continue
                    idx = target.slice
                    if any(name in masks for name in names_in(idx)):
                        continue
                    key = (target.value.id, node.lineno)
                    if key in reported:
                        continue
                    reported.add(key)
                    yield ctx.violation(
                        node,
                        self.id,
                        f"write to {target.value.id}[...] inside a divergent "
                        "lock-step loop is not guarded by an active-lane "
                        "mask; inactive lanes would mutate state on real "
                        "hardware",
                    )


# ----------------------------------------------------------------------
# KRN003 — static shared-memory race detection
# ----------------------------------------------------------------------
Event = Tuple[str, int]  # ("write" | "read" | "sync", lineno)


def _function_table(tree: ast.Module) -> Dict[str, ast.AST]:
    table: Dict[str, ast.AST] = {}
    for _parent, fn in walk_functions(tree):
        table[fn.name] = fn
    return table


def _marker_events_of_stmt(stmt: ast.stmt) -> List[Event]:
    """Direct DSL-marker events of one simple statement (no call inlining)."""
    events: List[Event] = []
    if isinstance(stmt, ast.AugAssign):
        text_names = set()
        for node in ast.walk(stmt):
            if isinstance(node, ast.Attribute):
                text_names.add(node.attr)
            elif isinstance(node, ast.Name):
                text_names.add(node.id)
        if "bytes_staged_shared" in text_names:
            events.append(("write", stmt.lineno))
        if "shared_load_requests" in text_names:
            events.append(("read", stmt.lineno))
        if any("SYNC" in n for n in text_names):
            events.append(("sync", stmt.lineno))
    return events


def _calls_of_stmt(stmt: ast.stmt) -> List[ast.Call]:
    """Call nodes of one statement; for compound statements only the header
    expression (test / iter) is scanned so body calls are not double
    counted by the statement walk."""
    if isinstance(stmt, ast.While):
        scan: List[ast.AST] = [stmt.test]
    elif isinstance(stmt, ast.For):
        scan = [stmt.iter]
    elif isinstance(stmt, ast.If):
        scan = [stmt.test]
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        scan = []
    else:
        scan = [stmt]
    calls: List[ast.Call] = []
    for root in scan:
        for node in ast.walk(root):
            if isinstance(node, ast.Call):
                calls.append(node)
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    return calls


def _events_of_function(
    fn: ast.AST,
    table: Dict[str, ast.AST],
    project=None,
    mod=None,
    enclosing=None,
    _visited: Optional[set] = None,
    _depth: int = 0,
) -> List[Event]:
    """Ordered shared-memory events of a function body.

    Calls are inlined *recursively* through the project call graph
    (v2: ``_run -> _stage -> _stage_inner`` chains of any depth, including
    helpers imported from sibling kernel modules), guarded by a visited
    set so recursion and mutual calls terminate.  The same-module name
    table remains the fallback when no project is available.  ``mod`` is
    the :class:`~repro.statcheck.project.ModuleInfo` *containing* ``fn``,
    so calls inside an inlined cross-module helper resolve in that
    helper's own namespace.
    """
    from repro.statcheck.astutils import statements_in_order
    from repro.statcheck.project import MAX_CALL_DEPTH

    visited = _visited if _visited is not None else {id(fn)}
    events: List[Event] = []
    for stmt in statements_in_order(fn.body):
        for call in _calls_of_stmt(stmt):
            name = last_segment(dotted_name(call.func))
            if "sync" in name.lower():
                events.append(("sync", call.lineno))
                continue
            callee_info = None
            if project is not None and mod is not None:
                callee_info = project.resolve_call(call, mod, enclosing=enclosing)
            if callee_info is not None:
                callee_node = callee_info.node
                callee_mod = callee_info.module
            elif name in table:
                callee_node = table[name]
                callee_mod = mod
            else:
                continue
            if id(callee_node) in visited or _depth >= MAX_CALL_DEPTH:
                continue
            visited.add(id(callee_node))
            callee_events = _events_of_function(
                callee_node,
                table,
                project=project,
                mod=callee_mod,
                enclosing=callee_info,
                _visited=visited,
                _depth=_depth + 1,
            )
            events.extend((kind, call.lineno) for kind, _ in callee_events)
        events.extend(_marker_events_of_stmt(stmt))
    return events


@register
class SharedMemoryRaceRule(Rule):
    id = "KRN003"
    summary = (
        "shared-memory staging writes must be fenced by a block sync "
        "before the first shared-memory read"
    )
    path_prefixes = KERNEL_PREFIX

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        table = _function_table(ctx.tree)
        mod = ctx.module_info
        info_by_node = (
            {id(f.node): f for f in mod.functions.values()} if mod else {}
        )
        for _parent, fn in walk_functions(ctx.tree):
            events = _events_of_function(
                fn,
                table,
                project=ctx.project if mod else None,
                mod=mod,
                enclosing=info_by_node.get(id(fn)),
            )
            pending_write: Optional[int] = None
            for kind, line in events:
                if kind == "write":
                    pending_write = line
                elif kind == "sync":
                    pending_write = None
                elif kind == "read" and pending_write is not None:
                    yield Violation(
                        path=ctx.path,
                        line=line,
                        col=0,
                        rule_id=self.id,
                        message=(
                            f"in {fn.name!r}: shared-memory read at line "
                            f"{line} follows the staging write at line "
                            f"{pending_write} with no intervening block sync "
                            "(record_sync / SYNC_CYCLES) — a read-after-"
                            "write shared-memory race on real hardware"
                        ),
                    )
                    pending_write = None  # one report per unfenced write
