"""Changed-files mode (``--incremental``): re-analyze only what can differ.

The cache (JSON, default ``.statcheck-cache.json``) records per file: a
content hash, the project-internal modules it imported, and the
violations of its last clean analysis.  On the next run:

1. every file is still *parsed* (the whole-program :class:`Project` is the
   substrate of the flow rules and parsing is ~100x cheaper than
   analysis);
2. a file is **dirty** if its hash changed, it is new, or the cache
   predates the current rule selection;
3. dirtiness propagates along *reverse import edges* — an interprocedural
   finding in ``caller.py`` can change when ``helper.py`` does, so every
   transitive dependent of a dirty module re-analyzes too;
4. clean files replay their cached violations verbatim.

The summary cache inside the Project is per-run and shared, so a helper
re-analyzed for one dirty dependent serves all of them.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.statcheck.core import (
    Violation,
    build_project,
    check_source,
    iter_python_files,
    module_key,
)

CACHE_VERSION = 2
DEFAULT_CACHE = ".statcheck-cache.json"


def _hash_source(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _rules_signature(rules) -> str:
    ids = sorted(r.id for r in rules) if rules is not None else ["<all>"]
    return ",".join(ids)


@dataclass
class IncrementalResult:
    violations: List[Violation] = field(default_factory=list)
    #: Files actually re-analyzed this run (dirty + dependents).
    analyzed: List[str] = field(default_factory=list)
    #: Files whose cached results were replayed.
    reused: List[str] = field(default_factory=list)


def load_cache(path: str) -> Dict[str, object]:
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError):
        return {}
    if data.get("version") != CACHE_VERSION:
        return {}
    return data


def _violations_from_cache(entries: Iterable[dict]) -> List[Violation]:
    out = []
    for e in entries:
        out.append(
            Violation(
                path=str(e["path"]),
                line=int(e["line"]),
                col=int(e["col"]),
                rule_id=str(e["rule"]),
                message=str(e["message"]),
            )
        )
    return out


def run_incremental(
    paths: Sequence[str],
    cache_path: str = DEFAULT_CACHE,
    rules=None,
) -> IncrementalResult:
    """Check ``paths``, reusing the cache at ``cache_path`` and updating it."""
    files = list(iter_python_files(paths))
    sources: Dict[str, str] = {}
    for f in files:
        try:
            with open(f, encoding="utf-8") as fh:
                sources[f] = fh.read()
        except OSError:
            continue

    project = build_project(list(sources))
    cache = load_cache(cache_path)
    cached_files: Dict[str, dict] = dict(cache.get("files", {}))
    sig = _rules_signature(rules)
    stale_rules = cache.get("rules") != sig

    hashes = {f: _hash_source(src) for f, src in sources.items()}
    dirty: Set[str] = set()
    for f in sources:
        entry = cached_files.get(f)
        if stale_rules or entry is None or entry.get("hash") != hashes[f]:
            dirty.add(f)

    # Propagate along reverse import edges: a dirty helper re-analyzes its
    # (transitive) dependents even though their text is unchanged.
    key_to_file = {module_key(f): f for f in sources}
    dirty_keys = {module_key(f) for f in dirty}
    for dep_key in project.transitive_dependents(dirty_keys):
        dep_file = key_to_file.get(dep_key)
        if dep_file is not None:
            dirty.add(dep_file)

    result = IncrementalResult()
    new_entries: Dict[str, dict] = {}
    for f in sorted(sources):
        if f in dirty:
            vs = check_source(sources[f], f, rules=rules, project=project)
            result.analyzed.append(f)
        else:
            vs = _violations_from_cache(cached_files[f].get("violations", ()))
            result.reused.append(f)
        result.violations.extend(vs)
        new_entries[f] = {
            "hash": hashes[f],
            "deps": sorted(project.internal_deps(module_key(f))),
            "violations": [v.as_dict() for v in vs],
        }

    payload = {"version": CACHE_VERSION, "rules": sig, "files": new_entries}
    try:
        with open(cache_path, "w", encoding="utf-8") as f:
            json.dump(payload, f)
            f.write("\n")
    except OSError:
        pass  # a read-only checkout still gets correct results
    result.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return result
