"""Intraprocedural control-flow graphs and reaching definitions.

The flow analyses (:mod:`repro.statcheck.dataflow`) need join points to be
joins: a variable assigned ``np.float32`` on one branch and ``np.float64``
on the other must reach the merge as *both*, not whichever branch the
walker visited last.  This module builds a conventional basic-block CFG
over a function body and runs the classic reaching-definitions worklist
over it; the generic abstract interpreter reuses the same graph and
worklist for arbitrary lattices.

Supported control flow: ``if``/``elif``/``else``, ``while``/``for`` (+
``else``), ``break``/``continue``, ``return``/``raise``, ``with`` and
``try``/``except``/``finally`` (approximated: handlers join the body, as
any statement in the body may raise — sound for a may-analysis), ``match``
(every case is a branch).  Nested function/class definitions are treated
as opaque single statements — their bodies get their own CFGs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


@dataclass
class Block:
    """A straight-line run of simple statements."""

    id: int
    stmts: List[ast.stmt] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)

    def add_succ(self, other: int) -> None:
        if other not in self.succs:
            self.succs.append(other)


class CFG:
    """Basic-block graph of one function body."""

    def __init__(self) -> None:
        self.blocks: Dict[int, Block] = {}
        self.entry = self._new().id
        self.exit = self._new().id

    def _new(self) -> Block:
        b = Block(id=len(self.blocks))
        self.blocks[b.id] = b
        return b

    def preds(self) -> Dict[int, List[int]]:
        out: Dict[int, List[int]] = {bid: [] for bid in self.blocks}
        for b in self.blocks.values():
            for s in b.succs:
                out[s].append(b.id)
        return out

    def rpo(self) -> List[int]:
        """Reverse postorder from the entry (loop-friendly iteration order)."""
        seen: Set[int] = set()
        order: List[int] = []

        stack: List[Tuple[int, int]] = [(self.entry, 0)]
        seen.add(self.entry)
        while stack:
            bid, i = stack[-1]
            succs = self.blocks[bid].succs
            if i < len(succs):
                stack[-1] = (bid, i + 1)
                nxt = succs[i]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                order.append(bid)
                stack.pop()
        order.reverse()
        return order


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        #: (break targets, continue targets) stack for enclosing loops.
        self._loops: List[Tuple[int, int]] = []

    def build(self, body: List[ast.stmt]) -> CFG:
        cur = self.cfg.blocks[self.cfg.entry]
        end = self._stmts(body, cur)
        if end is not None:
            end.add_succ(self.cfg.exit)
        return self.cfg

    # ------------------------------------------------------------------
    def _stmts(self, body: List[ast.stmt], cur: Optional[Block]) -> Optional[Block]:
        """Thread ``body`` onto ``cur``; returns the open end block (None
        if control never falls through, e.g. after a return)."""
        for stmt in body:
            if cur is None:
                # Unreachable code still gets analyzed in its own island so
                # rules can flag it; it simply has no predecessors.
                cur = self.cfg._new()
            cur = self._stmt(stmt, cur)
        return cur

    def _stmt(self, stmt: ast.stmt, cur: Block) -> Optional[Block]:
        if isinstance(stmt, ast.If):
            cur.stmts.append(stmt)  # the test belongs to the current block
            join = self.cfg._new()
            then = self.cfg._new()
            cur.add_succ(then.id)
            end = self._stmts(stmt.body, then)
            if end is not None:
                end.add_succ(join.id)
            if stmt.orelse:
                els = self.cfg._new()
                cur.add_succ(els.id)
                end = self._stmts(stmt.orelse, els)
                if end is not None:
                    end.add_succ(join.id)
            else:
                cur.add_succ(join.id)
            return join
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head = self.cfg._new()
            cur.add_succ(head.id)
            head.stmts.append(stmt)  # test / iter+target evaluate at the head
            body = self.cfg._new()
            after = self.cfg._new()
            head.add_succ(body.id)
            head.add_succ(after.id)
            self._loops.append((after.id, head.id))
            end = self._stmts(stmt.body, body)
            self._loops.pop()
            if end is not None:
                end.add_succ(head.id)
            if stmt.orelse:
                els = self.cfg._new()
                head.add_succ(els.id)
                end = self._stmts(stmt.orelse, els)
                if end is not None:
                    end.add_succ(after.id)
            return after
        if isinstance(stmt, ast.Try):
            body = self.cfg._new()
            cur.add_succ(body.id)
            end = self._stmts(stmt.body, body)
            join = self.cfg._new()
            if end is not None:
                end.add_succ(join.id)
            for handler in stmt.handlers:
                h = self.cfg._new()
                # Any statement of the body may raise: the handler's entry
                # joins the state at the *start* of the try body.
                body.add_succ(h.id)
                if end is not None:
                    end.add_succ(h.id)
                hend = self._stmts(handler.body, h)
                if hend is not None:
                    hend.add_succ(join.id)
            if stmt.orelse:
                els = self.cfg._new()
                if end is not None:
                    end.add_succ(els.id)
                eend = self._stmts(stmt.orelse, els)
                if eend is not None:
                    eend.add_succ(join.id)
            if stmt.finalbody:
                return self._stmts(stmt.finalbody, join)
            return join
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            cur.stmts.append(stmt)  # context expressions evaluate here
            return self._stmts(stmt.body, cur)
        if isinstance(stmt, ast.Match):
            cur.stmts.append(stmt)
            join = self.cfg._new()
            for case in stmt.cases:
                arm = self.cfg._new()
                cur.add_succ(arm.id)
                end = self._stmts(case.body, arm)
                if end is not None:
                    end.add_succ(join.id)
            cur.add_succ(join.id)  # no case may match
            return join
        if isinstance(stmt, (ast.Return, ast.Raise)):
            cur.stmts.append(stmt)
            cur.add_succ(self.cfg.exit)
            return None
        if isinstance(stmt, ast.Break):
            if self._loops:
                cur.add_succ(self._loops[-1][0])
                return None
            return cur
        if isinstance(stmt, ast.Continue):
            if self._loops:
                cur.add_succ(self._loops[-1][1])
                return None
            return cur
        # Simple statement (incl. nested defs, treated as opaque).
        cur.stmts.append(stmt)
        return cur


def build_cfg(fn: ast.AST) -> CFG:
    """CFG of a FunctionDef/AsyncFunctionDef body."""
    return _Builder().build(list(fn.body))


# ----------------------------------------------------------------------
# Reaching definitions
# ----------------------------------------------------------------------
#: A definition site: (variable name, line, col).
Def = Tuple[str, int, int]


def _defs_of_stmt(stmt: ast.stmt) -> List[Def]:
    """Name definitions a statement makes (targets of assignments, loop
    variables, with-as names, aug-assign targets)."""
    out: List[Def] = []

    def targets(node: ast.AST) -> None:
        if isinstance(node, ast.Name):
            out.append((node.id, node.lineno, node.col_offset))
        elif isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                targets(elt)
        elif isinstance(node, ast.Starred):
            targets(node.value)

    if isinstance(stmt, ast.Assign):
        for t in stmt.targets:
            targets(t)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        if stmt.target is not None:
            targets(stmt.target)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                targets(item.optional_vars)
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        out.append((stmt.name, stmt.lineno, stmt.col_offset))
    # Walrus targets anywhere in the statement's expressions.
    for node in ast.walk(stmt):
        if isinstance(node, ast.NamedExpr):
            targets(node.target)
    return out


def reaching_definitions(cfg: CFG) -> Dict[int, Dict[str, Set[Def]]]:
    """Classic may-reach analysis: block id -> {name -> def sites} at entry."""
    gen: Dict[int, Dict[str, Set[Def]]] = {}
    for bid, block in cfg.blocks.items():
        g: Dict[str, Set[Def]] = {}
        for stmt in block.stmts:
            for d in _defs_of_stmt(stmt):
                g[d[0]] = {d}  # later defs in the block kill earlier ones
        gen[bid] = g

    entry_state: Dict[int, Dict[str, Set[Def]]] = {
        bid: {} for bid in cfg.blocks
    }
    preds = cfg.preds()
    order = cfg.rpo()
    changed = True
    while changed:
        changed = False
        for bid in order:
            merged: Dict[str, Set[Def]] = {}
            for p in preds[bid]:
                out_p = dict(entry_state[p])
                for name, defs in gen[p].items():
                    out_p[name] = defs
                for name, defs in out_p.items():
                    merged.setdefault(name, set()).update(defs)
            if merged != entry_state[bid]:
                entry_state[bid] = merged
                changed = True
    return entry_state
