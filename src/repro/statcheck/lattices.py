"""Concrete provenance domains: dtype flow and RNG seededness.

Both are powerset domains over :class:`~repro.statcheck.dataflow.AV` tags:

* **dtype-flow** — ``dt:<x>`` tags a *dtype object* (``np.float64``, the
  string ``"float32"``), ``arr:<x>`` tags an *array value* of that dtype.
  Constructors turn ``dt:`` into ``arr:``; ``astype``/``view`` re-tag;
  element access, slicing and shape-preserving methods pass tags through.
  A trailing ``~`` (``arr:f64~``) marks a *default* dtype — one nobody
  wrote down — so rules can distinguish "explicitly float64" from
  "float64 because NumPy's default leaked through a call boundary".
* **RNG-provenance** — ``rng:seeded`` / ``rng:unseeded``.  A Generator is
  seeded only if it flows from ``as_rng(<explicit seed>)`` (or another
  explicit-seed source); ``as_rng()``, ``as_rng(None)``,
  ``default_rng()`` and ``PCG64()`` taint it unseeded.  Sampling methods
  on an unseeded receiver record a finding; sampling on a *parameter*
  records the ``samples_params`` fact, which is how "helper three calls
  down draws from the rng you passed it" propagates to call sites.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.statcheck.dataflow import (
    AV,
    EMPTY,
    Domain,
    FunctionAnalysis,
    Summary,
    bind_args,
    substitute,
)
from repro.statcheck.project import FunctionInfo

# ----------------------------------------------------------------------
# dtype flow
# ----------------------------------------------------------------------
#: Resolved dotted name -> canonical dtype code.
DTYPE_NAMES = {
    "numpy.float64": "f64",
    "numpy.double": "f64",
    "float": "f64",
    "numpy.float32": "f32",
    "numpy.single": "f32",
    "numpy.float16": "f16",
    "numpy.half": "f16",
    "numpy.int8": "i8",
    "numpy.int16": "i16",
    "numpy.int32": "i32",
    "numpy.int64": "i64",
    "numpy.intp": "i64",
    "int": "i64",
    "numpy.uint8": "u8",
    "numpy.uint16": "u16",
    "numpy.uint32": "u32",
    "numpy.uint64": "u64",
    "numpy.bool_": "bool",
    "bool": "bool",
}

#: dtype string spellings numpy accepts (subset that matters here).
DTYPE_STRINGS = {
    "float64": "f64",
    "double": "f64",
    "f8": "f64",
    "float32": "f32",
    "f4": "f32",
    "float16": "f16",
    "f2": "f16",
    "int8": "i8",
    "int16": "i16",
    "int32": "i32",
    "int64": "i64",
    "uint8": "u8",
    "bool": "bool",
}

#: Array constructors honouring a dtype= keyword, with their no-dtype
#: default ("" = not modelled).
CONSTRUCTORS = {
    "numpy.zeros": "f64",
    "numpy.ones": "f64",
    "numpy.empty": "f64",
    "numpy.full": "f64",
    "numpy.arange": "",
    "numpy.linspace": "f64",
    "numpy.eye": "f64",
    "numpy.identity": "f64",
}

#: Converters that pass through their input's dtype unless dtype= is given.
CONVERTERS = {
    "numpy.asarray",
    "numpy.array",
    "numpy.ascontiguousarray",
    "numpy.asfortranarray",
    "numpy.zeros_like",
    "numpy.ones_like",
    "numpy.empty_like",
    "numpy.full_like",
    "numpy.concatenate",
    "numpy.stack",
    "numpy.vstack",
    "numpy.hstack",
    "numpy.where",
}

#: Shape-preserving array methods: dtype provenance passes through.
PASSTHROUGH_METHODS = {
    "copy",
    "reshape",
    "ravel",
    "flatten",
    "transpose",
    "squeeze",
    "clip",
    "take",
    "repeat",
    "swapaxes",
}

#: Calls that produce a scalar of the named numpy dtype.
SCALAR_CASTS = {
    "numpy.float64": "f64",
    "numpy.double": "f64",
    "numpy.float32": "f32",
    "numpy.float16": "f16",
    "numpy.int8": "i8",
    "numpy.int64": "i64",
}


def _dt_code(av: AV) -> Optional[str]:
    """The dtype code a dtype-object value names, if unambiguous."""
    codes = {t[3:] for t in av.tags if t.startswith("dt:")}
    if len(codes) == 1:
        return next(iter(codes))
    return None


def arr_codes(av: AV) -> set:
    """Array dtype codes (``~`` suffix stripped) carried by a value."""
    return {t[4:].rstrip("~") for t in av.tags if t.startswith("arr:")}


def is_f64_array(av: AV) -> bool:
    return "f64" in arr_codes(av)


def is_default_dtype(av: AV) -> bool:
    """True if any array tag came from an implicit (default) dtype."""
    return any(t.startswith("arr:") and t.endswith("~") for t in av.tags)


class DtypeDomain(Domain):
    name = "dtype"

    def name_value(self, dotted: str) -> AV:
        code = DTYPE_NAMES.get(dotted)
        if code is not None:
            return AV(frozenset({f"dt:{code}"}))
        return EMPTY

    def constant_value(self, node: ast.Constant) -> AV:
        if isinstance(node.value, str):
            code = DTYPE_STRINGS.get(node.value)
            if code is not None:
                return AV(frozenset({f"dt:{code}"}))
        return EMPTY

    def call_value(self, call, dotted, args, kwargs, analysis) -> AV:
        if dotted is None:
            return EMPTY
        if dotted in CONSTRUCTORS:
            dt = _dt_code(kwargs.get("dtype", EMPTY))
            if dt is not None:
                return AV(frozenset({f"arr:{dt}"}))
            if "dtype" in kwargs:
                return EMPTY  # dtype given but unresolvable: unknown
            default = CONSTRUCTORS[dotted]
            if default:
                return AV(frozenset({f"arr:{default}~"}))
            return EMPTY
        if dotted in CONVERTERS:
            dt = _dt_code(kwargs.get("dtype", EMPTY))
            if dt is not None:
                return AV(frozenset({f"arr:{dt}"}))
            if "dtype" in kwargs:
                return EMPTY
            src = args[0] if args else EMPTY
            return AV(frozenset(t for t in src.tags if t.startswith("arr:")),
                      src.params)
        if dotted in SCALAR_CASTS:
            return AV(frozenset({f"arr:{SCALAR_CASTS[dotted]}"}))
        if dotted == "numpy.dtype" and args:
            dt = _dt_code(args[0])
            if dt is not None:
                return AV(frozenset({f"dt:{dt}"}))
        return EMPTY

    def method_value(self, call, recv, attr, args, kwargs, analysis) -> AV:
        if attr in ("astype", "view"):
            dt_arg = kwargs.get("dtype") if "dtype" in kwargs else (
                args[0] if args else None
            )
            if dt_arg is not None:
                dt = _dt_code(dt_arg)
                if dt is not None:
                    return AV(frozenset({f"arr:{dt}"}))
            return EMPTY
        if attr in PASSTHROUGH_METHODS:
            return AV(
                frozenset(t for t in recv.tags if t.startswith("arr:")),
                recv.params,
            )
        return EMPTY

    def binop_value(self, node, left, right) -> AV:
        # float64 dominates mixed arithmetic; identical tags survive.
        lcodes, rcodes = arr_codes(left), arr_codes(right)
        if "f64" in lcodes | rcodes:
            tags = {
                t
                for t in left.tags | right.tags
                if t.startswith("arr:f64")
            }
            return AV(frozenset(tags), left.params | right.params)
        if lcodes and lcodes == rcodes:
            return AV(
                frozenset(
                    t
                    for t in left.tags | right.tags
                    if t.startswith("arr:")
                ),
                left.params | right.params,
            )
        return EMPTY


# ----------------------------------------------------------------------
# RNG provenance
# ----------------------------------------------------------------------
SEEDED = AV(frozenset({"rng:seeded"}))
UNSEEDED = AV(frozenset({"rng:unseeded"}))

#: Generator methods that consume the stream (sampling).
SAMPLING_METHODS = frozenset(
    {
        "random",
        "integers",
        "choice",
        "normal",
        "standard_normal",
        "uniform",
        "shuffle",
        "permutation",
        "permuted",
        "exponential",
        "poisson",
        "binomial",
        "multinomial",
        "multivariate_normal",
        "gamma",
        "beta",
        "chisquare",
        "dirichlet",
        "geometric",
        "laplace",
        "logistic",
        "lognormal",
        "bytes",
    }
)

#: Project intrinsics: (function qualname) -> handled specially, because
#: their seededness depends on the *argument*, which a return summary
#: cannot express.
RNG_WRAPPERS = {"as_rng", "spawn_rngs"}

#: Non-project RNG sources with the same argument-dependent semantics.
RNG_SOURCES = {
    "numpy.random.default_rng",
    "numpy.random.PCG64",
    "numpy.random.SeedSequence",
    "repro.utils.rng.as_rng",
    "repro.utils.rng.spawn_rngs",
}


def _rng_tags_only(av: AV) -> AV:
    return AV(frozenset(t for t in av.tags if t.startswith("rng:")), av.params)


def _source_value(call: ast.Call, args: List[AV], kwargs: Dict[str, AV]) -> AV:
    """Seededness of an explicit-seed RNG source call."""
    seed_node: Optional[ast.AST] = call.args[0] if call.args else None
    for kw in call.keywords:
        if kw.arg == "seed":
            seed_node = kw.value
    seed_av = args[0] if args else kwargs.get("seed", EMPTY)
    carried = _rng_tags_only(seed_av)
    if carried.tags:
        return carried  # as_rng(rng) passes an existing generator through
    if seed_node is None:
        return UNSEEDED
    if isinstance(seed_node, ast.Constant) and seed_node.value is None:
        return UNSEEDED
    if seed_av.params:
        # Seed is a parameter: seededness is the caller's; propagate the
        # parameter origin so call sites can decide.
        return AV(SEEDED.tags, seed_av.params)
    return SEEDED


class RngDomain(Domain):
    name = "rng"

    def call_value(self, call, dotted, args, kwargs, analysis) -> AV:
        if dotted in RNG_SOURCES or (
            dotted is not None and dotted.rsplit(".", 1)[-1] in RNG_WRAPPERS
        ):
            return _source_value(call, args, kwargs)
        if dotted == "numpy.random.Generator":
            return _rng_tags_only(args[0]) if args else EMPTY
        return EMPTY

    def method_value(self, call, recv, attr, args, kwargs, analysis) -> AV:
        if attr in SAMPLING_METHODS:
            if recv.has("rng:unseeded"):
                analysis.finding(call, attr)
            if recv.params:
                prior = analysis.facts.get("samples_params", frozenset())
                analysis.facts["samples_params"] = prior | recv.params
            return EMPTY
        if attr == "spawn":
            return _rng_tags_only(recv)
        return EMPTY

    def project_call_value(
        self,
        call: ast.Call,
        callee: FunctionInfo,
        summary: Summary,
        args: List[AV],
        kwargs: Dict[str, AV],
        analysis: FunctionAnalysis,
    ) -> AV:
        if callee.qualname in RNG_WRAPPERS:
            return _source_value(call, args, kwargs)
        bound = bind_args(callee, args, kwargs)
        sampled = summary.facts.get("samples_params", frozenset())
        for idx, av in bound.items():
            if idx in sampled:
                if av.has("rng:unseeded"):
                    analysis.finding(call, callee.qualname)
                if av.params:
                    prior = analysis.facts.get("samples_params", frozenset())
                    analysis.facts["samples_params"] = prior | av.params
        return substitute(summary.ret, bound)

    def collect_facts(self, analysis: FunctionAnalysis) -> Dict[str, object]:
        return {
            "samples_params": frozenset(
                analysis.facts.get("samples_params", frozenset())
            )
        }
