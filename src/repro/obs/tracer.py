"""Span-based tracing over an injected deterministic clock.

A :class:`Tracer` records what the simulators *would have done on a real
device*, on a timeline measured in **simulated seconds**: kernel launches,
per-CU FPGA activity, PCIe transfers, guard retries/backoff.  Time comes
from an injected :class:`~repro.utils.clock.Clock` — in practice a
:class:`~repro.utils.clock.SimulatedClock` advanced by the timing models —
never from the wall, so a seeded run produces a byte-identical trace on
any machine (DET001-clean by construction).

Tracks are named lanes (``gpu``, ``fpga/slr0/cu3``, ``pcie``, ``guard``)
that map to thread rows in the Chrome-trace/Perfetto export
(:mod:`repro.obs.export`).  Track ids are assigned in first-use order,
which is deterministic because the simulation itself is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.context import TraceContext
from repro.utils.clock import Clock, SimulatedClock


@dataclass(frozen=True)
class Span:
    """One completed interval on a track."""

    track: str
    name: str
    start_s: float
    dur_s: float
    cat: str = "sim"
    args: tuple = ()  # sorted (key, value) items; JSON-safe values
    #: Request-scoped trace context (None for un-attributed spans).
    ctx: Optional[TraceContext] = None
    #: Extra incoming-flow sources: span ids this span causally follows
    #: beyond its ctx parent (e.g. every member of a merged micro-batch).
    links: tuple = ()

    @property
    def end_s(self) -> float:
        return self.start_s + self.dur_s


@dataclass(frozen=True)
class Instant:
    """A zero-duration structured event (fault injected, breaker opened)."""

    track: str
    name: str
    ts_s: float
    cat: str = "sim"
    args: tuple = ()
    ctx: Optional[TraceContext] = None


@dataclass(frozen=True)
class CounterSample:
    """A counter-track sample (renders as a stacked area in Perfetto)."""

    track: str
    name: str
    ts_s: float
    values: tuple  # sorted (series, value) items


def _freeze_args(args: Optional[Dict[str, object]]) -> tuple:
    if not args:
        return ()
    return tuple(sorted(args.items()))


@dataclass
class Tracer:
    """Collects spans/instants/counter samples against one clock."""

    clock: Clock = field(default_factory=SimulatedClock)
    spans: List[Span] = field(default_factory=list)
    instants: List[Instant] = field(default_factory=list)
    counters: List[CounterSample] = field(default_factory=list)
    _tracks: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def track_id(self, track: str) -> int:
        """Stable small integer id for a track (first-use order)."""
        if track not in self._tracks:
            self._tracks[track] = len(self._tracks)
        return self._tracks[track]

    @property
    def tracks(self) -> Dict[str, int]:
        return dict(self._tracks)

    # ------------------------------------------------------------------
    def add_span(
        self,
        track: str,
        name: str,
        dur_s: float,
        start_s: Optional[float] = None,
        cat: str = "sim",
        args: Optional[Dict[str, object]] = None,
        advance: bool = True,
        ctx: Optional[TraceContext] = None,
        links: tuple = (),
    ) -> Span:
        """Record a completed interval.

        The simulators compute durations analytically *after* the
        functional pass, so spans are recorded retroactively: ``start_s``
        defaults to the clock's current time and, when ``advance`` is set,
        the clock moves to the span's end — consecutive launches lay out
        end-to-end exactly as a serialized device stream would.  Parallel
        lanes (FPGA CUs) pass ``advance=False`` and advance once.
        """
        if dur_s < 0:
            raise ValueError("span duration must be non-negative")
        start = self.clock.now() if start_s is None else float(start_s)
        span = Span(
            track=track,
            name=name,
            start_s=start,
            dur_s=float(dur_s),
            cat=cat,
            args=_freeze_args(args),
            ctx=ctx,
            links=tuple(int(link) for link in links),
        )
        self.track_id(track)
        self.spans.append(span)
        if advance and start_s is None and isinstance(self.clock,
                                                      SimulatedClock):
            self.clock.advance(dur_s)
        return span

    def instant(
        self,
        track: str,
        name: str,
        ts_s: Optional[float] = None,
        cat: str = "sim",
        args: Optional[Dict[str, object]] = None,
        ctx: Optional[TraceContext] = None,
    ) -> Instant:
        ev = Instant(
            track=track,
            name=name,
            ts_s=self.clock.now() if ts_s is None else float(ts_s),
            cat=cat,
            args=_freeze_args(args),
            ctx=ctx,
        )
        self.track_id(track)
        self.instants.append(ev)
        return ev

    def sample(
        self,
        track: str,
        name: str,
        values: Dict[str, float],
        ts_s: Optional[float] = None,
    ) -> CounterSample:
        s = CounterSample(
            track=track,
            name=name,
            ts_s=self.clock.now() if ts_s is None else float(ts_s),
            values=tuple(sorted(values.items())),
        )
        self.track_id(track)
        self.counters.append(s)
        return s

    # ------------------------------------------------------------------
    @property
    def end_s(self) -> float:
        """Latest event end on any track (0.0 when empty)."""
        ends = [s.end_s for s in self.spans]
        ends += [i.ts_s for i in self.instants]
        ends += [c.ts_s for c in self.counters]
        return max(ends) if ends else 0.0
