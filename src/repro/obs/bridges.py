"""Bridges: feed existing per-subsystem counters into the unified registry.

Before this module every subsystem kept its own silo —
:class:`~repro.gpusim.metrics.KernelMetrics` in gpusim,
:class:`~repro.fpgasim.pipeline.PipelineResult` in fpgasim,
:class:`~repro.reliability.guard.ReliabilityReport` in the serving guard,
byte accounting in :mod:`repro.layout.footprint`.  The functions here map
each silo into one namespace (see docs/architecture.md §8 for the naming
scheme), and :class:`ObsSession` packages a registry + tracer pair behind
the duck-typed observer hooks that :class:`~repro.kernels.base.GPUKernel`,
:class:`~repro.kernels.fpga_base.FPGAKernel` and
:class:`~repro.reliability.guard.ResilientClassifier` call.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.gpusim.metrics import COUNTER_FIELDS, GAUGE_FIELDS
from repro.obs.context import TraceContext
from repro.obs.protocol import Observer
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.utils.clock import SimulatedClock

#: Latency-histogram buckets in simulated seconds (sub-us to 10 s).
LATENCY_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


# ----------------------------------------------------------------------
# GPU
# ----------------------------------------------------------------------
def record_kernel_metrics(registry: MetricsRegistry, metrics,
                          **labels) -> None:
    """Ingest a :class:`KernelMetrics` as ``gpu.kernel.*`` counters.

    The paper's Fig. 8 nvprof counters land here: ``global load requests``
    is ``gpu.kernel.global_load_requests``, ``branch_efficiency`` is the
    gauge of the same name.
    """
    for field in COUNTER_FIELDS:
        registry.counter(
            f"gpu.kernel.{field}",
            "simulated kernel counter (nvprof analogue)",
        ).inc(float(getattr(metrics, field)), **labels)
    for field in GAUGE_FIELDS:
        registry.gauge(
            f"gpu.kernel.{field}", "derived kernel ratio"
        ).set(float(getattr(metrics, field)), **labels)


def record_kernel_timing(registry: MetricsRegistry, timing,
                         **labels) -> None:
    """Ingest a :class:`KernelTiming` as ``gpu.timing.*``."""
    registry.counter(
        "gpu.timing.seconds", "simulated kernel seconds (roofline)"
    ).inc(timing.seconds, **labels)
    for component, seconds in timing.components():
        registry.gauge(
            f"gpu.timing.{component}_s", "roofline component seconds"
        ).set(seconds, **labels)
    registry.counter(
        "gpu.timing.bound_by_total", "launches bound by each component"
    ).inc(1.0, component=timing.bound_by, **labels)


# ----------------------------------------------------------------------
# FPGA
# ----------------------------------------------------------------------
def record_pipeline(registry: MetricsRegistry, pipeline,
                    **labels) -> None:
    """Ingest a :class:`PipelineResult` as ``fpga.pipeline.*``."""
    registry.counter(
        "fpga.pipeline.seconds", "simulated pipeline seconds"
    ).inc(pipeline.seconds, **labels)
    registry.counter(
        "fpga.pipeline.work_items", "work items pushed through the pipeline"
    ).inc(pipeline.work_items, **labels)
    registry.counter(
        "fpga.pipeline.cycles_per_cu", "per-CU cycles including stalls"
    ).inc(pipeline.cycles_per_cu, **labels)
    registry.gauge(
        "fpga.pipeline.stall_pct", "stalled fraction of pipeline cycles"
    ).set(pipeline.stall_pct, **labels)
    ii = pipeline.ii
    if ii == ii:  # combined stages report NaN
        registry.gauge(
            "fpga.pipeline.ii", "initiation interval, cycles"
        ).set(ii, **labels)
    registry.gauge(
        "fpga.pipeline.freq_mhz", "achieved clock, MHz"
    ).set(pipeline.freq_mhz, **labels)


def record_eventsim(registry: MetricsRegistry, result, **labels) -> None:
    """Ingest an :class:`EventSimResult` as ``fpga.eventsim.*``."""
    registry.counter(
        "fpga.eventsim.cycles", "event-driven makespan, cycles"
    ).inc(result.cycles, **labels)
    registry.counter(
        "fpga.eventsim.stall_cycles", "slowest CU's channel-wait cycles"
    ).inc(result.stall_cycles, **labels)
    registry.gauge(
        "fpga.eventsim.channel_utilisation", "channel busy fraction"
    ).set(result.channel_utilisation, **labels)


# ----------------------------------------------------------------------
# Layouts
# ----------------------------------------------------------------------
def record_layout_footprint(registry: MetricsRegistry, layout,
                            **labels) -> None:
    """Record a layout's device byte footprint as ``layout.bytes``.

    Accepts either representation (CSR or hierarchical) and labels the
    sample with the detected kind.
    """
    from repro.layout.csr import CSRForest
    from repro.layout.footprint import csr_bytes, hierarchical_bytes
    from repro.layout.hierarchical import HierarchicalForest

    if isinstance(layout, CSRForest):
        kind, nbytes = "csr", csr_bytes(layout)
    elif isinstance(layout, HierarchicalForest):
        kind, nbytes = "hierarchical", hierarchical_bytes(layout)
    else:
        return  # e.g. the cuML FIL baseline: no byte model
    registry.gauge(
        "layout.bytes", "device-resident representation footprint"
    ).set(nbytes, kind=kind, **labels)
    registry.gauge(
        "layout.trees", "trees in the layout"
    ).set(layout.n_trees, kind=kind, **labels)


# ----------------------------------------------------------------------
# Runtime planner
# ----------------------------------------------------------------------
def record_plan(registry: MetricsRegistry, plan, **labels) -> None:
    """Ingest a chosen :class:`~repro.runtime.ExecutionPlan` as ``plan.*``.

    One counter per (platform, variant, source) tells you how often the
    autotuner picked each configuration and whether it came from the cost
    model, a probe refinement or the on-disk plan cache; the cost gauge
    keeps the model's estimate next to the measured kernel seconds.
    """
    registry.counter(
        "plan.chosen", "plans executed per configuration"
    ).inc(
        1.0,
        platform=plan.platform,
        variant=plan.variant,
        source=plan.source,
        **labels,
    )
    if plan.cost_estimate_s is not None:
        registry.gauge(
            "plan.cost_estimate_s", "analytic cost model estimate, seconds"
        ).set(plan.cost_estimate_s, plan=plan.label, **labels)


def record_fastpath(registry: MetricsRegistry, plan, stats, seconds: float,
                    **labels) -> None:
    """Ingest one trace-off launch (:class:`repro.fastpath.FastpathStats`)
    as the ``fastpath.*`` family.

    Trace-off runs have no kernel metrics to bridge, so this family is the
    only device-side signal they emit — without it a serving fleet on the
    fast path would produce empty manifests.  ``seconds`` is the launch's
    deterministic modelled latency, so ``fastpath.rows_per_s`` is replay-
    stable too.
    """
    kw = dict(platform=plan.platform, variant=plan.variant,
              family=stats.family, **labels)
    registry.counter(
        "fastpath.launches", "trace-off launches executed"
    ).inc(1.0, **kw)
    registry.counter(
        "fastpath.rows", "rows classified by the fast path"
    ).inc(float(stats.rows), **kw)
    registry.counter(
        "fastpath.lane_levels", "active lane-level steps executed"
    ).inc(float(stats.lane_levels), **kw)
    registry.counter(
        "fastpath.levels", "frontier levels executed"
    ).inc(float(stats.levels), **kw)
    registry.gauge(
        "fastpath.frontier_occupancy",
        "active-lane fraction over the last launch's frontier loop",
    ).set(stats.frontier_occupancy, **kw)
    if seconds > 0.0:
        registry.gauge(
            "fastpath.rows_per_s",
            "modelled fast-path throughput of the last launch",
        ).set(stats.rows / seconds, **kw)


# ----------------------------------------------------------------------
# Serving guard
# ----------------------------------------------------------------------
def record_reliability(registry: MetricsRegistry, report,
                       **labels) -> None:
    """Ingest a :class:`ReliabilityReport` as ``guard.*`` counters."""
    c = report.as_dict()
    for field in (
        "attempts",
        "retries",
        "transient_failures",
        "deadline_exceeded",
        "integrity_failures",
        "breaker_skips",
        "transfer_verifications",
        "calls",
    ):
        registry.counter(
            f"guard.{field}", "guard event count"
        ).inc(float(c[field]), **labels)
    registry.counter(
        "guard.backoff_seconds", "simulated seconds spent in retry backoff"
    ).inc(report.backoff_seconds, **labels)
    registry.counter(
        "guard.degraded_calls", "calls answered by degraded quorum voting"
    ).inc(1.0 if report.degraded else 0.0, **labels)
    registry.counter(
        "guard.dropped_trees", "trees excluded by integrity checks"
    ).inc(float(len(report.dropped_trees)), **labels)
    registry.counter(
        "guard.served_total", "calls served per final platform"
    ).inc(1.0, platform=report.platform_used or "unknown", **labels)
    registry.gauge(
        "guard.fallback_depth_max", "worst fallback-ladder depth seen"
    ).max(float(report.fallback_depth), **labels)
    for name, old, new in report.breaker_transitions:
        registry.counter(
            "guard.breaker_transitions", "circuit-breaker state changes"
        ).inc(1.0, breaker=name, to=new, **labels)


# ----------------------------------------------------------------------
# Serving front door
# ----------------------------------------------------------------------
def record_response(registry: MetricsRegistry, response,
                    exemplar: Optional[str] = None, **labels) -> None:
    """Ingest one serving :class:`~repro.serving.request.Response`.

    ``serving.responses`` counts terminal outcomes per (status, tenant);
    served requests additionally land in the end-to-end latency histogram
    (queue wait + batching + execution, simulated seconds) and the
    degraded/hedged counters the survivability report summarises.
    ``exemplar`` (a trace-id hex string) tags the latency bucket the
    response lands in, linking tail buckets back into the Chrome trace.
    """
    registry.counter(
        "serving.responses", "terminal request outcomes"
    ).inc(1.0, status=response.status.value, tenant=response.tenant, **labels)
    if not response.ok:
        return
    registry.histogram(
        "serving.latency.seconds",
        "served end-to-end latency (queue + batch + execute)",
        buckets=LATENCY_BUCKETS,
    ).observe(response.latency_s, exemplar=exemplar,
              tenant=response.tenant, **labels)
    registry.counter(
        "serving.served_by_platform", "served requests per platform"
    ).inc(1.0, platform=response.platform_used or "unknown", **labels)
    if response.degraded:
        registry.counter(
            "serving.degraded", "requests served by degraded quorum voting"
        ).inc(1.0, tenant=response.tenant, **labels)
    if response.hedged:
        registry.counter(
            "serving.hedged", "requests batched around an open breaker"
        ).inc(1.0, tenant=response.tenant, **labels)


def record_serving_stats(registry: MetricsRegistry, stats,
                         **labels) -> None:
    """Ingest a final :class:`~repro.serving.request.ServingStats` snapshot."""
    registry.counter(
        "serving.submitted", "requests admitted past the front door"
    ).inc(float(stats.submitted), **labels)
    registry.counter(
        "serving.batches", "micro-batches executed"
    ).inc(float(stats.batches), **labels)
    registry.counter(
        "serving.rows_executed", "feature rows pushed through backends"
    ).inc(float(stats.rows_executed), **labels)
    for reason, count in sorted(stats.rejected.items()):
        registry.counter(
            "serving.rejected", "typed admission rejections"
        ).inc(float(count), reason=reason, **labels)
    registry.gauge(
        "serving.queue_depth_max", "worst queue depth seen"
    ).max(float(stats.max_queue_depth), **labels)


# ----------------------------------------------------------------------
# The observer the hooks talk to
# ----------------------------------------------------------------------
class ObsSession(Observer):
    """One observed run: registry + tracer over a shared simulated clock.

    Implements the full typed :class:`~repro.obs.protocol.Observer`
    surface of the kernel base classes, the planner, the guard and the
    serving front door.

    When the front door drives the serving hooks (``on_request_admitted``
    -> ``on_batch_start`` -> kernel hooks -> ``on_guarded_call`` ->
    ``on_serving_batch`` -> ``on_response``), every span is stamped with
    the request's :class:`TraceContext` lineage: queue wait and the
    request root land on per-tenant ``requests/<tenant>`` tracks, the
    micro-batch on ``serving``, the guarded call on ``guard``, and each
    kernel/transfer span links back to its guard parent — the Chrome
    exporter renders the whole causal tree with cross-track flow arrows.
    Standalone use (no ``on_batch_start``) keeps the original untraced
    span shapes, so pre-existing goldens replay byte-identically.

    Consecutive kernel launches lay out end-to-end on the simulated
    timeline (the device stream is serial); FPGA CU lanes run in parallel
    between one start and end.
    """

    def __init__(self, clock: Optional[SimulatedClock] = None):
        self.clock = clock if clock is not None else SimulatedClock()
        self.registry = MetricsRegistry()
        self.tracer = Tracer(clock=self.clock)
        # Serving-pipeline state between on_batch_start and on_serving_batch.
        self._batch_ctx: Optional[TraceContext] = None
        self._batch_start_s: float = 0.0
        self._batch_links: tuple = ()
        self._batch_active: bool = False
        self._guard_ctx: Optional[TraceContext] = None
        self._kernel_ordinal: int = 0
        # request_id -> queue-wait span id (root-tree completeness).
        self._queue_spans: Dict[int, int] = {}

    def _kernel_ctx(self, name: str) -> Optional[TraceContext]:
        """Next kernel-level child of the active guarded call (or None)."""
        if self._guard_ctx is None:
            return None
        ctx = self._guard_ctx.child(name, self._kernel_ordinal)
        self._kernel_ordinal += 1
        return ctx

    # -- kernel hooks ---------------------------------------------------
    def on_gpu_kernel(self, kernel, result, grid=None) -> None:
        name = getattr(kernel, "name", "gpu-kernel")
        record_kernel_metrics(self.registry, result.metrics, kernel=name)
        record_kernel_timing(self.registry, result.timing, kernel=name)
        self.registry.histogram(
            "gpu.launch.seconds", "per-launch simulated latency",
            buckets=LATENCY_BUCKETS,
        ).observe(result.seconds, kernel=name)
        args: Dict[str, object] = {"bound_by": result.timing.bound_by}
        for component, seconds in result.timing.components():
            args[f"{component}_s"] = seconds
        if grid is not None:
            args.update(grid.launch_dims())
        start = self.clock.now()
        self.tracer.add_span("gpu", name, result.seconds, cat="kernel",
                             args=args, ctx=self._kernel_ctx("gpu"))
        self.tracer.sample(
            "gpu counters",
            "global load transactions",
            {
                "dram": float(result.metrics.dram_transactions),
                "l2": float(result.metrics.l2_transactions),
                "l1": float(result.metrics.l1_transactions),
            },
            ts_s=start,
        )

    def on_fpga_kernel(self, kernel, result, replication) -> None:
        name = getattr(kernel, "name", "fpga-kernel")
        record_pipeline(self.registry, result.pipeline, kernel=name,
                        replication=replication.label)
        self.registry.histogram(
            "fpga.launch.seconds", "per-launch simulated latency",
            buckets=LATENCY_BUCKETS,
        ).observe(result.seconds, kernel=name)
        start = self.clock.now()
        args = {
            "replication": replication.label,
            "stall_pct": result.pipeline.stall_pct,
            "work_items": result.pipeline.work_items,
        }
        # All CUs run in parallel between start and start + seconds; draw
        # one lane per CU and advance the shared clock once.  Each lane
        # gets its own context child so every lane hangs off the guard.
        for slr, cu in replication.iter_cus():
            self.tracer.add_span(
                replication.cu_track(slr, cu),
                name,
                result.seconds,
                start_s=start,
                cat="kernel",
                args=args,
                ctx=self._kernel_ctx("fpga"),
            )
        self.clock.advance(result.seconds)

    # -- transfers ------------------------------------------------------
    def on_transfer(self, direction: str, seconds: float,
                    nbytes: Optional[int] = None) -> None:
        args: Dict[str, object] = {}
        if nbytes is not None:
            args["bytes"] = int(nbytes)
            self.registry.counter(
                "transfer.bytes", "host<->device bytes moved"
            ).inc(float(nbytes), direction=direction)
        self.registry.counter(
            "transfer.seconds", "simulated PCIe transfer seconds"
        ).inc(seconds, direction=direction)
        self.tracer.add_span("pcie", direction, seconds, cat="transfer",
                             args=args, ctx=self._kernel_ctx("pcie"))

    # -- planner --------------------------------------------------------
    def on_plan(self, plan) -> None:
        record_plan(self.registry, plan)
        self.tracer.instant(
            "planner",
            f"plan {plan.label} ({plan.source})",
            args={
                "platform": plan.platform,
                "variant": plan.variant,
                "source": plan.source,
                "cost_estimate_s": plan.cost_estimate_s,
            },
        )

    # -- fastpath -------------------------------------------------------
    def on_fastpath(self, plan, stats, seconds: float) -> None:
        record_fastpath(self.registry, plan, stats, seconds)
        self.tracer.add_span(
            "fastpath",
            f"fastpath[{stats.rows} rows x {stats.trees} trees]",
            seconds,
            cat="fastpath",
            ctx=self._kernel_ctx("fastpath"),
            args={
                "platform": plan.platform,
                "variant": plan.variant,
                "family": stats.family,
                "levels": stats.levels,
                "lane_levels": stats.lane_levels,
                "frontier_occupancy": stats.frontier_occupancy,
            },
        )

    # -- guard ----------------------------------------------------------
    def on_rung_attempt(self, plan, attempt: int, retries: int) -> None:
        if attempt == 0:
            return  # first launches are the span itself, not an event
        self.tracer.instant(
            "guard",
            f"retry {plan.platform}/{plan.variant}",
            args={"attempt": attempt, "retries": retries},
            ctx=self._guard_ctx,
        )

    def on_guarded_call(self, result, report) -> None:
        record_reliability(self.registry, report)
        self.registry.histogram(
            "guard.call.seconds", "guarded call latency (simulated)",
            buckets=LATENCY_BUCKETS,
        ).observe(result.seconds)
        if self._batch_active and self._guard_ctx is not None:
            self.tracer.add_span(
                "guard",
                f"guarded-call[{report.platform_used or 'unknown'}]",
                result.seconds + report.backoff_seconds,
                start_s=self._batch_start_s,
                cat="guard",
                advance=False,
                ctx=self._guard_ctx,
                args={
                    "platform_used": report.platform_used,
                    "attempts": report.attempts,
                    "fallback_depth": report.fallback_depth,
                    "degraded": report.degraded,
                },
            )
        if report.fallback_depth or report.degraded:
            self.tracer.instant(
                "guard",
                "fallback" if report.fallback_depth else "degraded-quorum",
                ctx=self._guard_ctx,
                args={
                    "platform_used": report.platform_used,
                    "fallback_depth": report.fallback_depth,
                    "dropped_trees": len(report.dropped_trees),
                },
            )
        for name, old, new in report.breaker_transitions:
            self.tracer.instant(
                "guard",
                f"breaker {name}: {old} -> {new}",
                args={"breaker": name, "from": old, "to": new},
            )

    # -- serving front door ---------------------------------------------
    def on_request_admitted(self, request) -> None:
        self.registry.counter(
            "serving.admitted", "requests admitted past the front door"
        ).inc(1.0, tenant=request.tenant)

    def on_batch_start(self, ctx, batch_id: int, members, start_s: float,
                       ) -> None:
        # The front door's clock and this session's clock are distinct
        # (kernel hooks advance ours during guard execution); re-sync to
        # the serving clock at every batch boundary so span starts line up.
        now = self.clock.now()
        if start_s > now:
            self.clock.advance(start_s - now)
        links: List[int] = []
        for req in members:
            if req.trace is None:
                continue
            qctx = req.trace.child("queue")
            span = self.tracer.add_span(
                f"requests/{req.tenant}",
                "queue",
                max(start_s - req.arrival_s, 0.0),
                start_s=req.arrival_s,
                cat="serving",
                advance=False,
                ctx=qctx,
                args={"request_id": req.request_id, "batch_id": batch_id},
            )
            self._queue_spans[req.request_id] = qctx.span_id
            links.append(qctx.span_id)
        self._batch_ctx = ctx
        self._batch_start_s = float(start_s)
        self._batch_links = tuple(links)
        self._batch_active = True
        self._guard_ctx = ctx.child("guard") if ctx is not None else None
        self._kernel_ordinal = 0

    def on_response(self, response) -> None:
        ctx = getattr(response, "trace", None)
        record_response(
            self.registry,
            response,
            exemplar=ctx.trace_hex if ctx is not None else None,
        )
        if ctx is not None:
            # The request root span: admission to terminal verdict, on the
            # tenant's own track.  Everything else in the tree (queue,
            # batch, guard, kernels) hangs off this context's ids.
            self.tracer.add_span(
                f"requests/{response.tenant}",
                f"request {response.request_id} [{response.status.value}]",
                max(response.latency_s, 0.0),
                start_s=response.arrival_s,
                cat="request",
                advance=False,
                ctx=ctx,
                args={
                    "request_id": response.request_id,
                    "status": response.status.value,
                    "batch_id": response.batch_id,
                    "platform_used": response.platform_used,
                    "degraded": response.degraded,
                    "hedged": response.hedged,
                },
            )
        if response.status.shed:
            self.tracer.instant(
                "serving",
                f"shed {response.status.value}",
                ctx=ctx,
                args={
                    "request_id": response.request_id,
                    "tenant": response.tenant,
                },
            )

    def on_serving_batch(self, rows: int, seconds: float, platform: str,
                         hedged: bool) -> None:
        self.registry.histogram(
            "serving.batch.rows", "rows coalesced per micro-batch",
            buckets=(1, 4, 16, 64, 256, 1024),
        ).observe(float(rows))
        if self._batch_active:
            # Explicit interval on the serving clock; our own clock was
            # advanced piecemeal by the kernel hooks, so don't advance it
            # again — just top it up to the batch end if it fell short
            # (pure model time like backoff has no kernel span).
            self.tracer.add_span(
                "serving",
                f"batch[{rows} rows]",
                seconds,
                start_s=self._batch_start_s,
                cat="serving",
                advance=False,
                ctx=self._batch_ctx,
                links=self._batch_links,
                args={"platform": platform, "hedged": hedged},
            )
            end = self._batch_start_s + seconds
            now = self.clock.now()
            if end > now:
                self.clock.advance(end - now)
            self._batch_ctx = None
            self._batch_links = ()
            self._batch_active = False
            self._guard_ctx = None
        else:
            self.tracer.add_span(
                "serving",
                f"batch[{rows} rows]",
                seconds,
                cat="serving",
                args={"platform": platform, "hedged": hedged},
            )

    def on_queue_depth(self, depth: int) -> None:
        self.registry.gauge(
            "serving.queue_depth", "front-door queue depth"
        ).set(float(depth))
