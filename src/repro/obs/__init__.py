"""repro.obs — deterministic observability for the simulated pipeline.

One namespace over everything the repo can measure: a span
:class:`~repro.obs.tracer.Tracer` on the simulated clock, a labeled
:class:`~repro.obs.registry.MetricsRegistry`, request-scoped
:class:`~repro.obs.context.TraceContext` lineage with a typed
:class:`~repro.obs.protocol.Observer` hook surface, bridges that ingest
the per-subsystem counter silos, declarative SLOs with multi-window
burn-rate evaluation (:mod:`repro.obs.slo`), and deterministic exporters
(Chrome trace with flow arrows, Prometheus text with exemplars, JSONL
run manifests).  ``python -m repro.obs`` drives it from the command line.
"""

from repro.obs.bridges import (
    ObsSession,
    record_eventsim,
    record_fastpath,
    record_kernel_metrics,
    record_kernel_timing,
    record_layout_footprint,
    record_pipeline,
    record_plan,
    record_reliability,
    record_response,
    record_serving_stats,
)
from repro.obs.context import TraceContext, hex64, mix64
from repro.obs.export import (
    chrome_trace_events,
    prometheus_text,
    registry_manifest_counters,
    render_chrome_trace,
    write_chrome_trace,
    write_prometheus,
)
from repro.obs.manifest import (
    CounterDelta,
    ManifestDiff,
    RunManifest,
    build_manifest,
    diff_manifests,
    read_manifest,
    render_manifest,
    rows_to_counters,
    write_manifest,
)
from repro.obs.protocol import HOOKS, NULL_OBSERVER, Observer, ensure_observer
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.slo import (
    BurnWindow,
    SLObjective,
    SLOEvent,
    check_slo_report,
    default_objectives,
    evaluate_objective,
    evaluate_objectives,
    events_from_responses,
    read_slo_report,
    render_slo_report,
    write_slo_report,
)
from repro.obs.tracer import CounterSample, Instant, Span, Tracer

__all__ = [
    "ObsSession",
    "record_eventsim",
    "record_fastpath",
    "record_kernel_metrics",
    "record_kernel_timing",
    "record_layout_footprint",
    "record_pipeline",
    "record_plan",
    "record_reliability",
    "record_response",
    "record_serving_stats",
    "TraceContext",
    "hex64",
    "mix64",
    "chrome_trace_events",
    "prometheus_text",
    "registry_manifest_counters",
    "render_chrome_trace",
    "write_chrome_trace",
    "write_prometheus",
    "CounterDelta",
    "ManifestDiff",
    "RunManifest",
    "build_manifest",
    "diff_manifests",
    "read_manifest",
    "render_manifest",
    "rows_to_counters",
    "write_manifest",
    "HOOKS",
    "NULL_OBSERVER",
    "Observer",
    "ensure_observer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "BurnWindow",
    "SLObjective",
    "SLOEvent",
    "check_slo_report",
    "default_objectives",
    "evaluate_objective",
    "evaluate_objectives",
    "events_from_responses",
    "read_slo_report",
    "render_slo_report",
    "write_slo_report",
    "CounterSample",
    "Instant",
    "Span",
    "Tracer",
]
