"""repro.obs — deterministic observability for the simulated pipeline.

One namespace over everything the repo can measure: a span
:class:`~repro.obs.tracer.Tracer` on the simulated clock, a labeled
:class:`~repro.obs.registry.MetricsRegistry`, bridges that ingest the
per-subsystem counter silos, and deterministic exporters (Chrome trace,
Prometheus text, JSONL run manifests).  ``python -m repro.obs`` drives it
from the command line.
"""

from repro.obs.bridges import (
    ObsSession,
    record_eventsim,
    record_fastpath,
    record_kernel_metrics,
    record_kernel_timing,
    record_layout_footprint,
    record_pipeline,
    record_plan,
    record_reliability,
    record_response,
    record_serving_stats,
)
from repro.obs.export import (
    chrome_trace_events,
    prometheus_text,
    registry_manifest_counters,
    render_chrome_trace,
    write_chrome_trace,
    write_prometheus,
)
from repro.obs.manifest import (
    CounterDelta,
    ManifestDiff,
    RunManifest,
    build_manifest,
    diff_manifests,
    read_manifest,
    render_manifest,
    rows_to_counters,
    write_manifest,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import CounterSample, Instant, Span, Tracer

__all__ = [
    "ObsSession",
    "record_eventsim",
    "record_fastpath",
    "record_kernel_metrics",
    "record_kernel_timing",
    "record_layout_footprint",
    "record_pipeline",
    "record_plan",
    "record_reliability",
    "record_response",
    "record_serving_stats",
    "chrome_trace_events",
    "prometheus_text",
    "registry_manifest_counters",
    "render_chrome_trace",
    "write_chrome_trace",
    "write_prometheus",
    "CounterDelta",
    "ManifestDiff",
    "RunManifest",
    "build_manifest",
    "diff_manifests",
    "read_manifest",
    "render_manifest",
    "rows_to_counters",
    "write_manifest",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "CounterSample",
    "Instant",
    "Span",
    "Tracer",
]
