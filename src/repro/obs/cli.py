"""``python -m repro.obs`` — trace a seeded run, summarize and diff manifests.

Subcommands::

    python -m repro.obs trace --out results/obs        # seeded smoke run
    python -m repro.obs summary results/obs/run_manifest.jsonl
    python -m repro.obs diff baseline.jsonl candidate.jsonl
    python -m repro.obs slo --check                    # SLO burn-rate gate

``diff`` exits non-zero when any lower-is-better counter increased beyond
the tolerance — wire it into CI to turn "did this PR slow the simulated
kernels down?" into a check instead of a code-review guess.  ``slo`` runs
the traced chaos soak twice (determinism contract), writes
``slo_report.json`` plus one Chrome trace per scenario, and with
``--check`` gates burn rates and cost-model calibration against the
checked-in baseline.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.obs.bridges import (
    ObsSession,
    record_eventsim,
    record_layout_footprint,
)
from repro.obs.export import (
    registry_manifest_counters,
    write_chrome_trace,
    write_prometheus,
)
from repro.obs.manifest import (
    RunManifest,
    build_manifest,
    diff_manifests,
    read_manifest,
    write_manifest,
)
from repro.utils.tables import format_table


# ----------------------------------------------------------------------
# trace: one fully observed, seeded smoke run
# ----------------------------------------------------------------------
def _record_event_lanes(
    session: ObsSession, n_cus: int = 4, items_per_cu: int = 24
) -> None:
    """Event-level FPGA lanes: one span per retired pipeline item."""
    from repro.fpgasim.device import ALVEO_U250
    from repro.fpgasim.eventsim import simulate_slr
    from repro.fpgasim.pipeline import derive_ii
    from repro.kernels.fpga_independent import FPGAIndependentKernel

    spec = ALVEO_U250
    freq_hz = spec.clock_mhz * 1e6
    base = session.clock.now()

    def recorder(cu: int, item: int, admit: float, finish: float) -> None:
        session.tracer.add_span(
            f"fpga-events/cu{cu}",
            f"item {item}",
            (finish - admit) / freq_hz,
            start_s=base + admit / freq_hz,
            cat="eventsim",
        )

    result = simulate_slr(
        spec,
        n_cus=n_cus,
        items_per_cu=items_per_cu,
        ii=float(derive_ii(FPGAIndependentKernel.II_CHAIN, spec)),
        accesses_per_item=1,
        recorder=recorder,
    )
    record_eventsim(session.registry, result, slr="0")
    session.clock.advance(result.cycles / freq_hz)


def run_traced(
    dataset: str = "susy", scale: str = "smoke", seed: int = 0
) -> ObsSession:
    """One seeded classification tour with every hook observed.

    GPU CSR + hybrid launches (with PCIe round trips), an FPGA hybrid
    launch with per-CU lanes, an event-level FPGA lane from the discrete
    simulator, and a guarded call — enough to exercise every track the
    exporters know about, small enough to finish in seconds.
    """
    from repro.core.classifier import HierarchicalForestClassifier
    from repro.core.config import KernelVariant, Platform, RunConfig
    from repro.experiments.common import (
        band_depths,
        get_dataset,
        get_forest,
        get_scale,
        queries_for,
    )
    from repro.fpgasim.replication import Replication
    from repro.reliability.guard import ResilientClassifier

    session = ObsSession()
    sc = get_scale(scale)
    ds = get_dataset(dataset, sc)
    X = queries_for(ds, sc)
    depth = band_depths(dataset, sc)[0]
    forest = get_forest(dataset, depth, sc.n_trees, sc, seed=seed)
    clf = HierarchicalForestClassifier.from_forest(forest)

    for variant in (KernelVariant.CSR, KernelVariant.HYBRID):
        cfg = RunConfig(variant=variant)
        record_layout_footprint(
            session.registry, clf.layout_for(cfg), dataset=dataset
        )
        clf.classify(X, cfg, observer=session, include_transfer=True)

    clf.classify(
        X,
        RunConfig(
            platform=Platform.FPGA,
            variant=KernelVariant.HYBRID,
            replication=Replication(n_slrs=2, cus_per_slr=2),
        ),
        observer=session,
    )
    _record_event_lanes(session)

    guard = ResilientClassifier(clf, seed=seed, observer=session)
    guard.classify(X[:256], RunConfig(variant=KernelVariant.HYBRID))
    return session


def cmd_trace(args) -> int:
    import os

    session = run_traced(dataset=args.dataset, scale=args.scale,
                         seed=args.seed)
    out = args.out
    trace_path = write_chrome_trace(
        os.path.join(out, "trace.json"), session.tracer
    )
    prom_path = write_prometheus(
        os.path.join(out, "metrics.prom"), session.registry
    )
    manifest = build_manifest(
        "trace",
        args.scale,
        registry_manifest_counters(session.registry),
        extra_meta={"dataset": args.dataset, "seed": args.seed},
    )
    manifest_path = write_manifest(
        os.path.join(out, "run_manifest.jsonl"), manifest
    )
    print(f"[trace: {trace_path}]  (open in https://ui.perfetto.dev)")
    print(f"[metrics: {prom_path}]")
    print(f"[run manifest: {manifest_path}]")
    print(
        f"timeline: {session.tracer.end_s * 1e3:.3f} simulated ms over "
        f"{len(session.tracer.tracks)} tracks, "
        f"{len(session.tracer.spans)} spans"
    )
    return 0


# ----------------------------------------------------------------------
# slo: the traced chaos soak + burn-rate/calibration CI gate
# ----------------------------------------------------------------------
def cmd_slo(args) -> int:
    import os

    from repro.experiments.serving_chaos import run_slo_soak
    from repro.obs.slo import (
        check_slo_report,
        read_slo_report,
        render_slo_report,
        write_slo_report,
    )

    first = run_slo_soak(
        scale=args.scale, seed=args.seed,
        miscalibration=args.inject_miscalibration,
    )
    second = run_slo_soak(
        scale=args.scale, seed=args.seed,
        miscalibration=args.inject_miscalibration,
    )
    if render_slo_report(first.report) != render_slo_report(second.report):
        print("FAIL: SLO soak is not deterministic across replays")
        return 1
    for name, trace in first.traces.items():
        if trace != second.traces[name]:
            print(f"FAIL: Chrome trace for {name} differs across replays")
            return 1

    report_path = write_slo_report(
        os.path.join(args.out, "slo_report.json"), first.report
    )
    print(f"[slo report: {report_path}]")
    for name in sorted(first.traces):
        path = os.path.join(args.out, f"trace_{name}.json")
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        with open(path, "w", encoding="utf-8", newline="\n") as f:
            f.write(first.traces[name])
        print(f"[trace: {path}]")
    for scenario in first.report["scenarios"]:
        verdicts = ", ".join(
            f"{o['name']}={'VIOLATED' if o['violated'] else 'ok'}"
            f"(burn {o['burn_rate']:.2f})"
            for o in scenario["objectives"]
        )
        print(f"  {scenario['scenario']}: {verdicts}")

    if args.write_baseline:
        write_slo_report(args.baseline, first.report)
        print(f"[baseline written to {args.baseline}]")
        return 0
    if not args.check:
        return 0
    try:
        baseline = read_slo_report(args.baseline)
    except (OSError, ValueError) as e:
        print(f"FAIL: cannot read baseline {args.baseline}: {e}")
        return 1
    failures = check_slo_report(first.report, baseline)
    if failures:
        for line in failures:
            print(f"FAIL: {line}")
        return 1
    print(
        f"slo ok: {len(first.report['scenarios'])} scenarios deterministic, "
        f"within burn-rate and calibration gates ({args.baseline})"
    )
    return 0


# ----------------------------------------------------------------------
# summary / diff
# ----------------------------------------------------------------------
def summarize(manifest: RunManifest, limit: int = 0) -> str:
    meta = ", ".join(
        f"{k}={manifest.meta[k]}" for k in sorted(manifest.meta)
    )
    names = sorted(manifest.counters)
    if limit:
        names = names[:limit]
    body = [[n, manifest.counters[n]] for n in names]
    table = format_table(
        ["counter", "value"], body,
        title=f"run manifest ({meta})", float_digits=6,
    )
    if limit and len(manifest.counters) > limit:
        table += f"\n... {len(manifest.counters) - limit} more"
    return table


def cmd_summary(args) -> int:
    print(summarize(read_manifest(args.manifest), limit=args.limit))
    return 0


def render_diff(diff, baseline_name: str, candidate_name: str) -> str:
    out: List[str] = []
    rows = [
        [
            "REGRESSION" if d.regression else "changed",
            d.name,
            d.baseline,
            d.candidate,
            d.delta,
        ]
        for d in diff.changed
    ]
    if rows:
        out.append(
            format_table(
                ["", "counter", baseline_name, candidate_name, "delta"],
                rows,
                title="counter deltas",
                float_digits=6,
            )
        )
    else:
        out.append("no counter changed")
    for label, names in (("only in baseline", diff.missing),
                         ("only in candidate", diff.added)):
        if names:
            out.append(f"{label}: " + ", ".join(names))
    verdict = (
        "OK: no regressions"
        if diff.ok
        else f"FAIL: {len(diff.regressions)} counter regression(s)"
    )
    out.append(verdict)
    return "\n".join(out)


def cmd_diff(args) -> int:
    baseline = read_manifest(args.baseline)
    candidate = read_manifest(args.candidate)
    diff = diff_manifests(baseline, candidate,
                          rel_tolerance=args.rel_tolerance)
    print(render_diff(diff, args.baseline, args.candidate))
    return 0 if diff.ok else 1


# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="Deterministic observability: trace a seeded run, "
        "summarize and diff run manifests.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("trace", help="run a seeded smoke tour and export "
                       "trace.json / metrics.prom / run_manifest.jsonl")
    p.add_argument("--out", default="results/obs", metavar="DIR")
    p.add_argument("--dataset", default="susy")
    p.add_argument("--scale", default="smoke",
                   choices=("smoke", "default", "full"))
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "slo",
        help="run the traced chaos soak twice, write slo_report.json + "
        "per-scenario Chrome traces; --check gates against the baseline",
    )
    p.add_argument("--out", default="results/slo", metavar="DIR")
    p.add_argument("--scale", default="smoke",
                   choices=("smoke", "default", "full"))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--baseline", default="results/slo_baseline.json")
    p.add_argument("--check", action="store_true",
                   help="exit 1 on burn-rate or calibration regressions "
                   "vs the baseline")
    p.add_argument("--write-baseline", action="store_true",
                   help="regenerate the baseline instead of gating")
    p.add_argument("--inject-miscalibration", type=float, default=1.0,
                   metavar="FACTOR",
                   help="multiply cost-model predictions by FACTOR "
                   "(acceptance knob: 2.0 must trip the drift monitor)")
    p.set_defaults(func=cmd_slo)

    p = sub.add_parser("summary", help="print one manifest's counters")
    p.add_argument("manifest")
    p.add_argument("--limit", type=int, default=0,
                   help="show at most N counters (0 = all)")
    p.set_defaults(func=cmd_summary)

    p = sub.add_parser(
        "diff",
        help="compare two manifests; exit 1 on counter regressions",
    )
    p.add_argument("baseline")
    p.add_argument("candidate")
    p.add_argument("--rel-tolerance", type=float, default=0.0,
                   help="allowed relative increase before a lower-is-"
                   "better counter is flagged (default 0)")
    p.set_defaults(func=cmd_diff)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - CLI glue
    sys.exit(main())
