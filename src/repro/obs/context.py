"""Request-scoped trace contexts with deterministic, seed-derived ids.

A :class:`TraceContext` is the propagation token of the second
observability layer: the front door mints one per admitted request, the
micro-batcher derives a batch context from its first member, the guard
derives one per guarded call, and every kernel span executed on behalf of
that batch carries a child context.  The exporter
(:mod:`repro.obs.export`) turns the parent links into Chrome-trace flow
arrows, so one request's full causal tree — admission, queueing, batch,
guard ladder, kernel launches — renders as a connected graph across
tracks.

Ids are 64-bit integers derived with a splitmix64-style mixer from the
serving trace seed and the request id — never from wall time, ``id()`` or
a global counter — so a seeded chaos replay produces byte-identical
traces (the same invariant the survivability soak is built on).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Optional

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _splitmix64(x: int) -> int:
    """One splitmix64 output step (public-domain constants)."""
    x = (x + _GOLDEN) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


def mix64(*parts) -> int:
    """Mix integers and strings into one nonzero 64-bit id.

    Strings hash through CRC32 first, so the result depends only on the
    values — stable across processes and platforms.
    """
    h = 0
    for part in parts:
        if isinstance(part, str):
            part = zlib.crc32(part.encode("utf-8"))
        h = _splitmix64(h ^ (int(part) & _MASK64))
    return h or 1


def hex64(value: int) -> str:
    """Canonical 16-digit lowercase hex rendering of a 64-bit id."""
    return f"{value & _MASK64:016x}"


@dataclass(frozen=True)
class TraceContext:
    """One node of a request's causal tree (trace id + span id + parent)."""

    trace_id: int
    span_id: int
    parent_span_id: Optional[int] = None

    # ------------------------------------------------------------------
    @classmethod
    def for_request(cls, trace_seed: int, request_id: int) -> "TraceContext":
        """Root context for one admitted request.

        The trace id is a pure function of ``(trace_seed, request_id)``;
        the root span id is derived from the trace id, so the whole tree
        replays identically for the same seeds.
        """
        trace_id = mix64("trace", trace_seed, request_id)
        return cls(trace_id=trace_id, span_id=mix64(trace_id, "root"))

    def child(self, name: str, ordinal: int = 0) -> "TraceContext":
        """A child context under this span (same trace, derived span id)."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=mix64(self.span_id, name, ordinal),
            parent_span_id=self.span_id,
        )

    # ------------------------------------------------------------------
    @property
    def trace_hex(self) -> str:
        return hex64(self.trace_id)

    @property
    def span_hex(self) -> str:
        return hex64(self.span_id)

    def as_args(self) -> Dict[str, str]:
        """The id triple as JSON-safe span args (hex strings)."""
        out = {"trace_id": self.trace_hex, "span_id": self.span_hex}
        if self.parent_span_id is not None:
            out["parent_span_id"] = hex64(self.parent_span_id)
        return out
