"""Declarative SLOs evaluated with multi-window burn-rate logic.

The chaos harness produces a terminal :class:`Response` per request; this
module turns that stream into service-level verdicts:

* an :class:`SLOEvent` is one request's contribution to the SLIs
  (finish time, latency, served/shed, wrong/correct, exemplar trace id);
* an :class:`SLObjective` declares a target over one SLI kind —
  ``availability`` (served fraction), ``latency`` (fraction served under
  a threshold) or ``correctness`` (wrong-answer rate, budget usually 0);
* :func:`evaluate_objective` applies Google-SRE-style multi-window
  burn-rate alerting: the error budget is ``1 - target``, the burn rate
  is ``error_rate / budget``, and an alert window *breaches* when both
  its long and short window burn above the window's threshold (the short
  window is the "is it still happening" guard against stale alerts);
* :func:`check_slo_report` is the CI gate: newly-violated objectives and
  calibration-error growth against a checked-in baseline fail the build.

Everything is a pure function of its inputs and every float is rounded
to 9 decimals, so a seeded soak emits a byte-identical ``slo_report.json``
— the same replay contract the survivability soak enforces.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: Burn rate reported for a zero-budget objective with errors (stands in
#: for "infinite"; JSON-safe and unmistakably over any threshold).
ZERO_BUDGET_BURN = 1e9

#: Calibration gate: a scenario's per-(platform, variant) mean absolute
#: log2 cost-model error may exceed the baseline's by at most this much
#: (0.5 in log2 ≈ a 1.41x multiplicative drift) before CI fails.
CALIBRATION_TOLERANCE_LOG2 = 0.5


def _round(x: float) -> float:
    """Stable decimal rounding so report JSON is byte-reproducible."""
    return float(round(float(x), 9))


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SLOEvent:
    """One request's terminal contribution to the SLIs."""

    ts_s: float  # finish time on the serving clock
    latency_s: float
    served: bool
    wrong: bool = False
    trace_id: str = ""  # exemplar (hex) back into the Chrome trace


def events_from_responses(responses, wrong_ids=()) -> List[SLOEvent]:
    """Map serving :class:`Response` objects onto :class:`SLOEvent`.

    ``wrong_ids`` is the set of request ids whose served predictions
    diverged from the authoritative host trees (the survivability
    report's wrong-answer set).
    """
    wrong_ids = set(wrong_ids)
    events = []
    for resp in responses:
        ctx = getattr(resp, "trace", None)
        events.append(
            SLOEvent(
                ts_s=float(resp.finish_s),
                latency_s=float(resp.latency_s),
                served=bool(resp.ok),
                wrong=resp.request_id in wrong_ids,
                trace_id=ctx.trace_hex if ctx is not None else "",
            )
        )
    return events


# ----------------------------------------------------------------------
# Objectives
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BurnWindow:
    """One multi-window alert rule, sized as fractions of the horizon.

    Real fleets use wall-clock windows (1 h long / 5 m short); a chaos
    replay lasts a fraction of a simulated second, so windows scale with
    the scenario horizon instead.  A window breaches when **both** the
    long and the short window burn above ``max_burn``.
    """

    name: str
    long_frac: float
    short_frac: float
    max_burn: float


#: Fast burn (page now) + slow burn (budget bleeding) — the classic pair.
DEFAULT_WINDOWS = (
    BurnWindow("fast", long_frac=1 / 12, short_frac=1 / 48, max_burn=8.0),
    BurnWindow("slow", long_frac=1 / 2, short_frac=1 / 12, max_burn=2.0),
)


@dataclass(frozen=True)
class SLObjective:
    """A declarative objective over one SLI kind."""

    name: str
    kind: str  # "availability" | "latency" | "correctness"
    target: float  # good fraction, e.g. 0.95 -> 5% error budget
    threshold_s: float = 0.0  # latency kind: served faster than this
    windows: Tuple[BurnWindow, ...] = DEFAULT_WINDOWS
    max_exemplars: int = 3

    def __post_init__(self):
        if self.kind not in ("availability", "latency", "correctness"):
            raise ValueError(f"unknown SLI kind {self.kind!r}")
        if not 0.0 < self.target <= 1.0:
            raise ValueError("target must be in (0, 1]")
        if self.kind == "latency" and self.threshold_s <= 0:
            raise ValueError("latency objectives need threshold_s > 0")

    def is_bad(self, event: SLOEvent) -> bool:
        if self.kind == "availability":
            return not event.served
        if self.kind == "latency":
            return (not event.served) or event.latency_s > self.threshold_s
        return event.wrong


def default_objectives(latency_threshold_s: float = 0.05):
    """The chaos-soak objective set (availability, tail latency, truth)."""
    return (
        SLObjective(name="availability", kind="availability", target=0.90),
        SLObjective(
            name="latency-p99",
            kind="latency",
            target=0.99,
            threshold_s=latency_threshold_s,
        ),
        # Zero error budget: one wrong answer exhausts it instantly.
        SLObjective(name="correctness", kind="correctness", target=1.0),
    )


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------
def _burn(bad: int, total: int, budget: float) -> float:
    if total == 0:
        return 0.0
    error_rate = bad / total
    if budget <= 0.0:
        return ZERO_BUDGET_BURN if error_rate > 0 else 0.0
    return error_rate / budget


def evaluate_objective(
    objective: SLObjective,
    events: Sequence[SLOEvent],
    horizon_s: float,
) -> Dict[str, object]:
    """One objective's verdict over one replay's event stream.

    The objective is *violated* when the whole-run burn exceeds 1.0 (the
    budget is spent) or any alert window breaches.  The verdict carries
    exemplar trace ids of the worst offending events so a violated SLO
    links straight into the Chrome trace.
    """
    budget = 1.0 - objective.target
    bad_events = [e for e in events if objective.is_bad(e)]
    total = len(events)
    overall_burn = _burn(len(bad_events), total, budget)

    windows = []
    breached_any = False
    for w in objective.windows:
        row = {"window": w.name, "max_burn": _round(w.max_burn)}
        for side, frac in (("long", w.long_frac), ("short", w.short_frac)):
            span = horizon_s * frac
            lo = horizon_s - span
            inside = [e for e in events if e.ts_s > lo]
            bad = sum(1 for e in inside if objective.is_bad(e))
            row[f"{side}_s"] = _round(span)
            row[f"{side}_events"] = len(inside)
            row[f"{side}_burn"] = _round(_burn(bad, len(inside), budget))
        row["breached"] = (
            row["long_burn"] > w.max_burn and row["short_burn"] > w.max_burn
        )
        breached_any = breached_any or row["breached"]
        windows.append(row)

    worst = sorted(
        (e for e in bad_events if e.trace_id),
        key=lambda e: (-e.latency_s, e.trace_id),
    )[: objective.max_exemplars]
    return {
        "name": objective.name,
        "kind": objective.kind,
        "target": _round(objective.target),
        "events": total,
        "bad_events": len(bad_events),
        "error_rate": _round(len(bad_events) / total) if total else 0.0,
        "burn_rate": _round(overall_burn),
        "windows": windows,
        "violated": bool(overall_burn > 1.0 or breached_any),
        "exemplars": [e.trace_id for e in worst],
    }


def evaluate_objectives(
    objectives: Sequence[SLObjective],
    events: Sequence[SLOEvent],
    horizon_s: float,
) -> List[Dict[str, object]]:
    return [evaluate_objective(o, events, horizon_s) for o in objectives]


# ----------------------------------------------------------------------
# Report plumbing + the CI gate
# ----------------------------------------------------------------------
def render_slo_report(report: Dict[str, object]) -> str:
    """Canonical byte-stable JSON rendering (golden tests compare it)."""
    return json.dumps(report, indent=1, sort_keys=True) + "\n"


def write_slo_report(path: str, report: Dict[str, object]) -> str:
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="\n") as f:
        f.write(render_slo_report(report))
    return path


def read_slo_report(path: str) -> Dict[str, object]:
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def check_slo_report(
    report: Dict[str, object],
    baseline: Dict[str, object],
    calibration_tolerance_log2: float = CALIBRATION_TOLERANCE_LOG2,
) -> List[str]:
    """CI gate: the report may not be worse than the checked-in baseline.

    * a **correctness** objective violation fails outright (zero
      tolerance, baseline or not — wrong answers are never acceptable);
    * any objective violated now but not in the baseline fails
      (burn-rate regression);
    * any per-(platform, variant) cost-model calibration error more than
      ``calibration_tolerance_log2`` above the baseline's fails (the
      drift monitor's re-probes are recorded, not forgiven).
    """
    failures: List[str] = []
    base_by_name = {s["scenario"]: s for s in baseline.get("scenarios", [])}
    for scenario in report.get("scenarios", []):
        name = scenario["scenario"]
        base = base_by_name.get(name)
        if base is None:
            failures.append(f"{name}: no baseline entry (regenerate it)")
            continue
        base_objectives = {o["name"]: o for o in base["objectives"]}
        for obj in scenario["objectives"]:
            if not obj["violated"]:
                continue
            if obj["kind"] == "correctness":
                failures.append(
                    f"{name}/{obj['name']}: {obj['bad_events']} wrong "
                    "answers (zero tolerance)"
                )
                continue
            base_obj = base_objectives.get(obj["name"])
            if base_obj is None or not base_obj["violated"]:
                failures.append(
                    f"{name}/{obj['name']}: burn rate "
                    f"{obj['burn_rate']:.3f} newly violates the objective "
                    "(baseline was healthy)"
                )
        base_cal = base.get("calibration", {})
        for key, row in scenario.get("calibration", {}).items():
            base_err = base_cal.get(key, {}).get("mean_abs_log2_error", 0.0)
            err = row["mean_abs_log2_error"]
            if err > base_err + calibration_tolerance_log2:
                failures.append(
                    f"{name}: cost-model calibration error for {key} is "
                    f"{err:.3f} log2 (baseline {base_err:.3f} + "
                    f"{calibration_tolerance_log2} allowed) — "
                    f"{row['reprobes']} plan-cache re-probe(s) recorded"
                )
    return failures
