"""The typed observer protocol: every hook, named once, no-op by default.

Before this module the runtime, guard and front door dispatched their
observability hooks through string ``hasattr`` checks — a typo'd hook name
silently disabled observability (statcheck rule OBS002 now flags that
pattern).  The contract lives here instead:

* :class:`Observer` is the no-op base defining the full hook surface;
  subclass it (as :class:`repro.obs.ObsSession` does) and override what
  you need.
* :func:`ensure_observer` adapts *anything* to that surface once, at a
  component boundary: ``None`` becomes the shared no-op, a complete
  observer passes through untouched, and a partial duck-typed observer
  (e.g. a test double with only ``on_response``) is wrapped so missing
  hooks no-op instead of raising.

The module is dependency-free on purpose — serving, runtime and
reliability all import it without dragging in the exporters.
"""

from __future__ import annotations


class Observer:
    """No-op base implementing the full observability hook surface.

    Hook arguments are positional and stable; see
    :class:`repro.obs.ObsSession` for the reference implementation that
    turns them into metrics and trace spans.
    """

    # -- kernels / transfers -------------------------------------------
    def on_gpu_kernel(self, kernel, result, grid=None) -> None:
        """One simulated GPU kernel launch completed."""

    def on_fpga_kernel(self, kernel, result, replication) -> None:
        """One simulated FPGA kernel launch completed."""

    def on_transfer(self, direction, seconds, nbytes=None) -> None:
        """One simulated PCIe transfer completed."""

    # -- runtime --------------------------------------------------------
    def on_plan(self, plan) -> None:
        """The planner chose an :class:`ExecutionPlan`."""

    def on_fastpath(self, plan, stats, seconds) -> None:
        """One trace-off fast-path launch completed."""

    # -- reliability guard ---------------------------------------------
    def on_rung_attempt(self, plan, attempt, retries) -> None:
        """The guard is attempting one ladder rung (``attempt`` 0-based)."""

    def on_guarded_call(self, result, report) -> None:
        """One guarded call finished with its reliability accounting."""

    # -- serving front door --------------------------------------------
    def on_request_admitted(self, request) -> None:
        """One request passed admission and entered the queue."""

    def on_batch_start(self, ctx, batch_id, members, start_s) -> None:
        """A micro-batch is about to execute (``ctx`` may be None)."""

    def on_serving_batch(self, rows, seconds, platform, hedged) -> None:
        """A micro-batch finished executing."""

    def on_response(self, response) -> None:
        """One request reached its terminal :class:`Response`."""

    def on_queue_depth(self, depth) -> None:
        """The front-door queue depth changed."""


#: Every hook name, derived from the base class so the list cannot drift.
HOOKS = tuple(
    sorted(
        name
        for name in vars(Observer)
        if name.startswith("on_") and callable(getattr(Observer, name))
    )
)

#: Shared no-op instance (``ensure_observer(None)`` returns it).
NULL_OBSERVER = Observer()


class PartialObserver(Observer):
    """Adapter binding a duck-typed observer's present hooks, once.

    Hooks the wrapped object implements are bound as instance attributes
    (no per-call string lookup); everything else inherits the base no-op.
    """

    def __init__(self, inner):
        self.inner = inner
        for name in HOOKS:
            hook = getattr(inner, name, None)
            if callable(hook):
                setattr(self, name, hook)


def ensure_observer(observer) -> Observer:
    """Adapt ``observer`` to the full :class:`Observer` surface.

    ``None`` maps to the shared no-op; an object already implementing
    every hook (e.g. an :class:`Observer` subclass) passes through by
    identity; anything else gets a :class:`PartialObserver` wrapper.
    Call it once at a component boundary, then dispatch hooks directly.
    """
    if observer is None:
        return NULL_OBSERVER
    if isinstance(observer, Observer):
        return observer
    if all(callable(getattr(observer, name, None)) for name in HOOKS):
        return observer
    return PartialObserver(observer)
