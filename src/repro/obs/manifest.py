"""Run manifests: the JSONL record every experiment leaves behind.

A manifest is the machine-readable receipt of one run: a ``run`` header
line (experiment, scale, schema version, seeds) followed by one
``counter`` line per metric, sorted by name.  Two invariants make it
useful:

* **Deterministic bytes** — counters come from simulated quantities and
  serialize with sorted keys and fixed separators, so the same seed
  produces the same file, byte for byte.  No timestamps, no hostnames.
* **Diffable** — :func:`diff_manifests` pairs counters by name and flags
  regressions on the lower-is-better ones (``python -m repro.obs diff``
  exits non-zero), giving every perf PR a before/after artifact instead
  of a claim.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

SCHEMA_VERSION = 1

#: Counter-name substrings whose *increase* is a regression (more simulated
#: time, more memory traffic, more guard trouble).  Ratios like
#: branch_efficiency or accuracy are higher-is-better and are reported as
#: deltas but never flagged.
LOWER_IS_BETTER = (
    "seconds",
    "cycles",
    "transactions",
    "requests",
    "instructions",
    "stall",
    "retries",
    "failures",
    "skips",
    "fallback",
    "backoff",
    "dropped",
    "deadline",
    "bytes",
    "launches",
)


def is_lower_better(name: str) -> bool:
    """Does an increase of this counter count as a regression?"""
    base = name.split("{", 1)[0]
    return any(tok in base for tok in LOWER_IS_BETTER)


@dataclass(frozen=True)
class RunManifest:
    """Parsed manifest: run metadata plus the flat counter namespace."""

    meta: Dict[str, object]
    counters: Dict[str, float]

    @property
    def experiment(self) -> str:
        return str(self.meta.get("experiment", "?"))


def build_manifest(
    experiment: str,
    scale: str,
    counters: Dict[str, float],
    extra_meta: Optional[Dict[str, object]] = None,
) -> RunManifest:
    meta: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "experiment": experiment,
        "scale": scale,
    }
    if extra_meta:
        meta.update(extra_meta)
    return RunManifest(meta=meta, counters=dict(counters))


def rows_to_counters(rows: List[Dict]) -> Dict[str, float]:
    """Aggregate experiment rows into manifest counters.

    Every numeric column ``k`` becomes ``rows.k.sum`` / ``.min`` / ``.max``
    (booleans and strings are skipped); ``rows.count`` records the row
    count.  This keeps manifests schema-free: new experiment columns show
    up in diffs without code changes.
    """
    out: Dict[str, float] = {"rows.count": float(len(rows))}
    by_key: Dict[str, List[float]] = {}
    for row in rows:
        for k, v in row.items():
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                continue
            by_key.setdefault(str(k), []).append(float(v))
    for k in sorted(by_key):
        vals = by_key[k]
        out[f"rows.{k}.sum"] = sum(vals)
        out[f"rows.{k}.min"] = min(vals)
        out[f"rows.{k}.max"] = max(vals)
    return out


# ----------------------------------------------------------------------
# Serialization (JSONL)
# ----------------------------------------------------------------------
def _dumps(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def render_manifest(manifest: RunManifest) -> str:
    """Deterministic JSONL text for one manifest."""
    lines = [_dumps({"type": "run", **manifest.meta})]
    for name in sorted(manifest.counters):
        lines.append(
            _dumps({"type": "counter", "name": name,
                    "value": manifest.counters[name]})
        )
    return "\n".join(lines) + "\n"


def write_manifest(path: str, manifest: RunManifest) -> str:
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="\n") as f:
        f.write(render_manifest(manifest))
    return path


def read_manifest(path: str) -> RunManifest:
    meta: Optional[Dict[str, object]] = None
    counters: Dict[str, float] = {}
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            raw = raw.strip()
            if not raw:
                continue
            rec = json.loads(raw)
            kind = rec.get("type")
            if kind == "run":
                if meta is not None:
                    raise ValueError(f"{path}:{lineno}: duplicate run header")
                meta = {k: v for k, v in rec.items() if k != "type"}
            elif kind == "counter":
                counters[str(rec["name"])] = float(rec["value"])
            else:
                raise ValueError(f"{path}:{lineno}: unknown record {kind!r}")
    if meta is None:
        raise ValueError(f"{path}: missing run header line")
    schema = meta.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: manifest schema {schema!r}, expected {SCHEMA_VERSION}"
        )
    return RunManifest(meta=meta, counters=counters)


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CounterDelta:
    """One counter compared across two manifests."""

    name: str
    baseline: float
    candidate: float
    regression: bool

    @property
    def delta(self) -> float:
        return self.candidate - self.baseline

    @property
    def rel(self) -> float:
        """Relative change vs the baseline (inf when baseline is 0)."""
        if self.baseline == 0.0:
            return 0.0 if self.candidate == 0.0 else float("inf")
        return self.delta / abs(self.baseline)


@dataclass
class ManifestDiff:
    """Full comparison of a candidate manifest against a baseline."""

    deltas: List[CounterDelta] = field(default_factory=list)
    #: Counters present only in the baseline / only in the candidate.
    missing: List[str] = field(default_factory=list)
    added: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[CounterDelta]:
        return [d for d in self.deltas if d.regression]

    @property
    def changed(self) -> List[CounterDelta]:
        return [d for d in self.deltas if d.delta != 0.0]

    @property
    def ok(self) -> bool:
        return not self.regressions


def diff_manifests(
    baseline: RunManifest,
    candidate: RunManifest,
    rel_tolerance: float = 0.0,
) -> ManifestDiff:
    """Compare counters by name; flag lower-is-better increases.

    ``rel_tolerance`` is the allowed relative increase before a
    lower-is-better counter is flagged (0.0 = any increase regresses —
    right for this repo, where simulated counters are exact).
    """
    if rel_tolerance < 0:
        raise ValueError("rel_tolerance must be non-negative")
    diff = ManifestDiff()
    a, b = baseline.counters, candidate.counters
    for name in sorted(set(a) | set(b)):
        if name not in b:
            diff.missing.append(name)
            continue
        if name not in a:
            diff.added.append(name)
            continue
        va, vb = a[name], b[name]
        regression = (
            is_lower_better(name)
            and vb > va + abs(va) * rel_tolerance
            and vb - va > 1e-12
        )
        diff.deltas.append(
            CounterDelta(name=name, baseline=va, candidate=vb,
                         regression=regression)
        )
    return diff
