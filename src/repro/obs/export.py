"""Exporters: Chrome-trace/Perfetto JSON and Prometheus text exposition.

Both formats are rendered deterministically (sorted keys, fixed
separators, ``\\n`` line endings) so a seeded run exports byte-identical
artifacts — the golden-file tests depend on it.

* :func:`render_chrome_trace` — load the file in ``chrome://tracing`` or
  https://ui.perfetto.dev to *see* the simulated timeline: GPU kernel
  launches, per-CU FPGA lanes, PCIe transfers, guard activity.  Timestamps
  are simulated microseconds.
* :func:`prometheus_text` — the text exposition format a scrape endpoint
  would serve; the serving example prints it as its metrics page.
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, List

from repro.obs.registry import Histogram, MetricsRegistry, format_labels
from repro.obs.tracer import Tracer

#: Chrome-trace timestamps are microseconds; ours are simulated seconds.
_US = 1e6

#: Single simulated process id for all tracks.
_PID = 1


def chrome_trace_events(tracer: Tracer) -> List[Dict]:
    """The ``traceEvents`` list for one tracer, deterministically ordered."""
    events: List[Dict] = [
        {
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro simulated device timeline"},
        }
    ]
    # Thread-name metadata: one row per track, in first-use (= id) order.
    for track, tid in sorted(tracer.tracks.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": track},
            }
        )
    tracks = tracer.tracks
    # span_id -> (tid, start ts, end ts) for spans carrying a context; the
    # flow-arrow pass below resolves parent links and batch-member links
    # against it.  First write wins (span ids are unique by construction).
    located: Dict[int, tuple] = {}
    for s in tracer.spans:
        args = dict(s.args)
        if s.ctx is not None:
            args.update(s.ctx.as_args())
            located.setdefault(
                s.ctx.span_id,
                (tracks[s.track], s.start_s * _US, s.end_s * _US),
            )
        events.append(
            {
                "ph": "X",
                "pid": _PID,
                "tid": tracks[s.track],
                "name": s.name,
                "cat": s.cat,
                "ts": s.start_s * _US,
                "dur": s.dur_s * _US,
                "args": args,
            }
        )
    for i in tracer.instants:
        args = dict(i.args)
        if i.ctx is not None:
            args.update(i.ctx.as_args())
        events.append(
            {
                "ph": "i",
                "pid": _PID,
                "tid": tracks[i.track],
                "name": i.name,
                "cat": i.cat,
                "ts": i.ts_s * _US,
                "s": "t",  # thread-scoped instant
                "args": args,
            }
        )
    for c in tracer.counters:
        events.append(
            {
                "ph": "C",
                "pid": _PID,
                "tid": tracks[c.track],
                "name": c.name,
                "ts": c.ts_s * _US,
                "args": dict(c.values),
            }
        )
    events.extend(_flow_events(tracer, tracks, located))
    return events


def _flow_events(tracer: Tracer, tracks: Dict[str, int],
                 located: Dict[int, tuple]) -> List[Dict]:
    """Chrome-trace ``s``/``f`` flow-arrow pairs for cross-track links.

    Every span whose context parent (or explicit ``links`` source) landed
    on a *different* track gets an arrow from the source span to its own
    start.  Arrow ids are sequence numbers over the deterministic span
    order, so the rendered file stays byte-identical across seeded runs.
    """
    flows: List[Dict] = []
    serial = 0
    for s in tracer.spans:
        tid = tracks[s.track]
        start_ts = s.start_s * _US
        sources = []
        if s.ctx is not None and s.ctx.parent_span_id is not None:
            sources.append(s.ctx.parent_span_id)
        sources.extend(s.links)
        for source in sources:
            src = located.get(source)
            if src is None or src[0] == tid:
                continue
            src_tid, src_start, src_end = src
            bind_ts = min(max(start_ts, src_start), src_end, start_ts)
            serial += 1
            common = {"pid": _PID, "name": "trace-flow", "cat": "trace",
                      "id": serial}
            flows.append(
                {"ph": "s", "tid": src_tid, "ts": bind_ts, **common}
            )
            flows.append(
                {"ph": "f", "bp": "e", "tid": tid, "ts": start_ts, **common}
            )
    return flows


def render_chrome_trace(tracer: Tracer) -> str:
    payload = {
        "displayTimeUnit": "ms",
        "traceEvents": chrome_trace_events(tracer),
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      allow_nan=False) + "\n"


def write_chrome_trace(path: str, tracer: Tracer) -> str:
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="\n") as f:
        f.write(render_chrome_trace(tracer))
    return path


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    """Registry dotted names -> Prometheus underscore names."""
    return name.replace(".", "_")


def _prom_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _prom_escape(value) -> str:
    """Escape a label value per the text exposition format.

    Backslash, double-quote and newline are the three characters the
    format requires escaping inside quoted label values; anything else
    passes through.  Without this, a label like ``reason="bad "input""``
    renders an unparseable exposition.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(items, extra=()) -> str:
    pairs = list(items) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_prom_escape(v)}"' for k, v in sorted(pairs))
    return "{" + body + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Text exposition (version 0.0.4) of the whole registry."""
    lines: List[str] = []
    for metric in registry.metrics():
        name = _prom_name(metric.name)
        if metric.help_text:
            lines.append(f"# HELP {name} {metric.help_text}")
        lines.append(f"# TYPE {name} {metric.kind}")
        if isinstance(metric, Histogram):
            for key, total in metric.samples():
                cumulative = metric.bucket_counts(**dict(key))
                exemplars = metric.exemplars(**dict(key))
                for i, (bound, count) in enumerate(
                    zip(metric.buckets, cumulative)
                ):
                    le = "+Inf" if math.isinf(bound) else _prom_value(bound)
                    line = (
                        f"{name}_bucket"
                        f"{_prom_labels(key, [('le', le)])} {count}"
                    )
                    if i in exemplars:
                        # OpenMetrics-style exemplar: the bucket's largest
                        # retained observation with its trace id.  Only
                        # emitted where an exemplar was recorded, so
                        # exemplar-free registries render byte-identically
                        # to the previous format.
                        value, trace_id = exemplars[i][0]
                        line += (
                            f' # {{trace_id="{_prom_escape(trace_id)}"}}'
                            f" {_prom_value(value)}"
                        )
                    lines.append(line)
                lines.append(
                    f"{name}_count{_prom_labels(key)} "
                    f"{metric.count(**dict(key))}"
                )
                lines.append(
                    f"{name}_sum{_prom_labels(key)} {_prom_value(total)}"
                )
        else:
            for key, value in metric.samples():
                lines.append(f"{name}{_prom_labels(key)} {_prom_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path: str, registry: MetricsRegistry) -> str:
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="\n") as f:
        f.write(prometheus_text(registry))
    return path


def registry_manifest_counters(registry: MetricsRegistry) -> Dict[str, float]:
    """The registry flattened into manifest counters (same namespace)."""
    return registry.as_flat_dict()
