"""Labeled metrics registry: counters, gauges, histograms.

One namespace for every counter the simulators and the serving guard
produce.  Names are dotted lowercase ``subsystem.object.quantity``
(``gpu.kernel.global_load_transactions``, ``fpga.pipeline.stall_pct``,
``guard.retries``); labels qualify a sample without forking the name
(``kernel="hybrid"``, ``slr="0"``).  Everything renders deterministically:
metrics sort by name, label sets by their sorted ``key=value`` items.

The registry is a plain in-memory structure — exporters
(:mod:`repro.obs.export`) turn it into Prometheus text or manifest
counters; bridges (:mod:`repro.obs.bridges`) fill it from the existing
per-subsystem counter objects.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-z][a-z0-9_.]*$")
_LABEL_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Default histogram bucket upper bounds (simulated seconds oriented).
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, float("inf")
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelItems:
    for k in labels:
        if not _LABEL_RE.match(k):
            raise ValueError(f"invalid label name {k!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_labels(items: LabelItems) -> str:
    """Render a label set as ``{a=1,b=x}`` (empty string for no labels)."""
    if not items:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in items) + "}"


class Metric:
    """Base: a named family of samples keyed by label set."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = ""):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help_text = help_text
        self._values: Dict[LabelItems, float] = {}

    # ------------------------------------------------------------------
    def samples(self) -> Iterator[Tuple[LabelItems, float]]:
        """(label items, value) pairs in deterministic (sorted) order."""
        for key in sorted(self._values):
            yield key, self._values[key]

    def value(self, **labels) -> float:
        """The sample for one label set (0.0 if never touched)."""
        return self._values.get(_label_key(labels), 0.0)

    def flat_items(self) -> Iterator[Tuple[str, float]]:
        """``name{labels}`` -> value pairs (histograms override this)."""
        for key, v in self.samples():
            yield self.name + format_labels(key), v


class Counter(Metric):
    """Monotonically increasing sum (events, transactions, seconds spent)."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + float(value)


class Gauge(Metric):
    """Point-in-time value (ratios, footprints, configured sizes)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._values[_label_key(labels)] = float(value)

    def max(self, value: float, **labels) -> None:
        """Keep the running maximum (e.g. worst fallback depth seen)."""
        key = _label_key(labels)
        self._values[key] = max(self._values.get(key, float("-inf")),
                                float(value))


class Histogram(Metric):
    """Cumulative-bucket histogram (latency distributions).

    Buckets optionally carry **exemplars**: per (label set, bucket), up to
    ``MAX_EXEMPLARS_PER_BUCKET`` ``(value, trace_id)`` pairs, keeping the
    largest observed values.  Exemplars are how a tail bucket answers
    "show me one" — the SLO report resolves them back to full request
    span trees in the Chrome trace.
    """

    kind = "histogram"

    #: Exemplars retained per bucket per label set (largest values win).
    MAX_EXEMPLARS_PER_BUCKET = 4

    def __init__(self, name: str, help_text: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, help_text)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        if bounds[-1] != float("inf"):
            bounds = bounds + (float("inf"),)
        self.buckets = bounds
        self._counts: Dict[LabelItems, List[int]] = {}
        self._exemplars: Dict[
            LabelItems, Dict[int, List[Tuple[float, str]]]
        ] = {}

    def observe(self, value: float, exemplar: Optional[str] = None,
                **labels) -> None:
        key = _label_key(labels)
        counts = self._counts.setdefault(key, [0] * len(self.buckets))
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
                if exemplar is not None:
                    self._note_exemplar(key, i, float(value), str(exemplar))
                break
        self._values[key] = self._values.get(key, 0.0) + float(value)

    def _note_exemplar(self, key: LabelItems, bucket: int, value: float,
                       exemplar: str) -> None:
        cell = self._exemplars.setdefault(key, {}).setdefault(bucket, [])
        cell.append((value, exemplar))
        # Deterministic retention: largest values first, ties on the id.
        cell.sort(key=lambda pair: (-pair[0], pair[1]))
        del cell[self.MAX_EXEMPLARS_PER_BUCKET:]

    def exemplars(self, **labels) -> Dict[int, List[Tuple[float, str]]]:
        """Bucket index -> retained ``(value, trace_id)`` exemplars."""
        cell = self._exemplars.get(_label_key(labels), {})
        return {i: list(cell[i]) for i in sorted(cell)}

    def count(self, **labels) -> int:
        counts = self._counts.get(_label_key(labels))
        return sum(counts) if counts else 0

    def bucket_counts(self, **labels) -> List[int]:
        """Cumulative counts per bucket bound (Prometheus ``le`` style)."""
        counts = self._counts.get(_label_key(labels), [0] * len(self.buckets))
        out, running = [], 0
        for c in counts:
            running += c
            out.append(running)
        return out

    def flat_items(self) -> Iterator[Tuple[str, float]]:
        for key in sorted(self._counts):
            suffix = format_labels(key)
            yield self.name + "_count" + suffix, float(self.count(
                **dict(key)))
            yield self.name + "_sum" + suffix, self._values.get(key, 0.0)


class MetricsRegistry:
    """The unified metric namespace: create-or-fetch by name."""

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, help_text: str, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, requested {cls.kind}"
                )
            return existing
        metric = cls(name, help_text, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help_text,
                                   buckets=buckets)

    # ------------------------------------------------------------------
    def metrics(self) -> List[Metric]:
        """All metrics sorted by name."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def as_flat_dict(self) -> Dict[str, float]:
        """``name{labels}`` -> value for every sample, sorted by key.

        This is the manifest/diff view of the registry: one flat, fully
        qualified counter namespace.
        """
        out: Dict[str, float] = {}
        for metric in self.metrics():
            for key, value in metric.flat_items():
                out[key] = value
        return out
