"""Random forest classifier (bootstrap-aggregated CART trees).

Mirrors the scikit-learn semantics the paper relies on: ``n_estimators``
bootstrap-resampled trees, per-node ``sqrt`` feature subsampling, majority
vote at prediction time (the paper's Fig. 1a accumulates per-tree votes and
compares against ``N/2`` for the binary case; we keep the general
``argmax``-of-votes form, which reduces to that comparison for two classes).
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.forest.builder import FeatureBinner, TreeBuilder
from repro.forest.tree import DecisionTree
from repro.utils.rng import as_rng, bootstrap_indices, spawn_rngs
from repro.utils.validation import check_array_2d, check_positive_int


class RandomForestClassifier:
    """Ensemble of CART trees with majority-vote classification.

    Parameters
    ----------
    n_estimators:
        Number of trees (the paper sweeps 10-150, settling on 100).
    max_depth:
        Maximum tree depth (the paper sweeps 5-50).  ``None`` = unbounded.
    max_features:
        Per-node feature subsample ("sqrt" default, as in scikit-learn).
    bootstrap:
        Draw each tree's training set with replacement (True, the RF default).
    store_oob:
        Keep each tree's bootstrap row indices so :meth:`oob_score` can
        compute the out-of-bag accuracy after fitting.
    splitter, max_bins, min_samples_split, min_samples_leaf:
        Forwarded to :class:`~repro.forest.builder.TreeBuilder`.
    seed:
        Seed or Generator; each tree gets an independent spawned stream.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: Optional[int] = None,
        max_features: Union[str, int, float, None] = "sqrt",
        bootstrap: bool = True,
        splitter: str = "hist",
        max_bins: int = 256,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        store_oob: bool = False,
        seed=None,
    ):
        self.n_estimators = check_positive_int(n_estimators, "n_estimators")
        self.max_depth = max_depth
        self.max_features = max_features
        self.bootstrap = bool(bootstrap)
        self.splitter = splitter
        self.max_bins = max_bins
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.store_oob = bool(store_oob)
        self.seed = seed
        self.trees_: List[DecisionTree] = []
        self.bootstrap_indices_: List[np.ndarray] = []
        self.n_classes_: Optional[int] = None
        self.n_features_: Optional[int] = None

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        """Train the forest on ``(X, y)``; labels must be 0..K-1 integers."""
        X = check_array_2d(X, "X")
        y = np.asarray(y, dtype=np.int32).ravel()
        if y.shape[0] != X.shape[0]:
            raise ValueError(
                f"X has {X.shape[0]} rows but y has {y.shape[0]} labels"
            )
        if y.size == 0:
            raise ValueError("cannot fit on an empty dataset")
        if y.min() < 0:
            raise ValueError("labels must be non-negative integers")
        self.n_classes_ = int(y.max()) + 1
        self.n_features_ = X.shape[1]

        builder = TreeBuilder(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            splitter=self.splitter,
            max_bins=self.max_bins,
        )
        binner = codes = None
        if self.splitter == "hist":
            binner = FeatureBinner(self.max_bins).fit(X)
            codes = binner.transform(X)

        rngs = spawn_rngs(self.seed, self.n_estimators)
        self.trees_ = []
        self.bootstrap_indices_ = []
        for rng in rngs:
            if self.bootstrap:
                idx = bootstrap_indices(rng, X.shape[0])
                Xb, yb = X[idx], y[idx]
                cb = codes[idx] if codes is not None else None
                if self.store_oob:
                    self.bootstrap_indices_.append(idx)
            else:
                Xb, yb, cb = X, y, codes
            tree = builder.build(
                Xb, yb, self.n_classes_, rng=rng, binner=binner, codes=cb
            )
            self.trees_.append(tree)
        return self

    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if not self.trees_:
            raise RuntimeError("forest is not fitted; call fit() first")

    def predict_votes(self, X: np.ndarray) -> np.ndarray:
        """Per-class vote counts, shape ``(n_queries, n_classes)``."""
        self._check_fitted()
        X = check_array_2d(X, "X")
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, forest expects {self.n_features_}"
            )
        votes = np.zeros((X.shape[0], self.n_classes_), dtype=np.int64)
        rows = np.arange(X.shape[0], dtype=np.int64)
        for tree in self.trees_:
            votes[rows, tree.predict(X)] += 1
        return votes

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority-vote class labels for each query (ties -> lowest label)."""
        return self.predict_votes(X).argmax(axis=1)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy on ``(X, y)``."""
        y = np.asarray(y).ravel()
        return float(np.mean(self.predict(X) == y))

    # ------------------------------------------------------------------
    def oob_score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Out-of-bag accuracy (requires ``store_oob=True`` and bootstrap);
        ``X``/``y`` must be the training data passed to :meth:`fit`."""
        from repro.forest.importance import oob_score

        self._check_fitted()
        if not self.bootstrap_indices_:
            raise RuntimeError(
                "oob_score needs store_oob=True and bootstrap=True at fit time"
            )
        return oob_score(
            self.trees_, self.bootstrap_indices_, X, y, self.n_classes_
        )

    @property
    def feature_importances_(self) -> np.ndarray:
        """Normalised per-feature importances (see repro.forest.importance)."""
        from repro.forest.importance import forest_feature_importances

        self._check_fitted()
        return forest_feature_importances(self.trees_, self.n_features_)

    @property
    def max_tree_depth_(self) -> int:
        """Deepest depth over all trained trees."""
        self._check_fitted()
        return max(t.max_depth for t in self.trees_)

    @property
    def total_nodes_(self) -> int:
        """Total node count over the forest."""
        self._check_fitted()
        return sum(t.n_nodes for t in self.trees_)

    @classmethod
    def from_trees(
        cls, trees: List[DecisionTree], n_features: int
    ) -> "RandomForestClassifier":
        """Wrap externally built trees (e.g. ``random_tree``) into a forest."""
        if not trees:
            raise ValueError("need at least one tree")
        clf = cls(n_estimators=len(trees))
        clf.trees_ = list(trees)
        clf.n_classes_ = max(t.n_classes for t in trees)
        clf.n_features_ = int(n_features)
        return clf

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fitted = f", fitted({len(self.trees_)} trees)" if self.trees_ else ""
        return (
            f"RandomForestClassifier(n_estimators={self.n_estimators}, "
            f"max_depth={self.max_depth}{fitted})"
        )
