"""Random-forest training substrate (scikit-learn substitute).

The paper trains its forests with scikit-learn's ``RandomForestClassifier``;
scikit-learn is not available in this environment, so this subpackage
implements the pieces the paper depends on from scratch:

* :class:`~repro.forest.tree.DecisionTree` — an array-based (struct-of-arrays)
  decision tree, the canonical in-memory form every layout is derived from.
* :class:`~repro.forest.builder.TreeBuilder` — a CART trainer with Gini
  impurity, exact and histogram split finding, depth/leaf-size controls.
* :class:`~repro.forest.random_forest.RandomForestClassifier` — bootstrap
  aggregation of CART trees with sqrt-feature subsampling and majority-vote
  prediction, mirroring scikit-learn's semantics for the parameters the paper
  sweeps (``max_depth``, ``n_estimators``).
"""

from repro.forest.tree import DecisionTree, LEAF, EMPTY
from repro.forest.builder import TreeBuilder
from repro.forest.random_forest import RandomForestClassifier
from repro.forest.metrics import accuracy_score, tree_shape_stats, forest_shape_stats
from repro.forest.io import save_forest, load_forest
from repro.forest.importance import (
    forest_feature_importances,
    oob_score,
    tree_feature_importance,
)
from repro.forest.prune import depth_sweep, truncate_depth, truncate_forest

__all__ = [
    "depth_sweep",
    "truncate_depth",
    "truncate_forest",
    "forest_feature_importances",
    "oob_score",
    "tree_feature_importance",
    "DecisionTree",
    "LEAF",
    "EMPTY",
    "TreeBuilder",
    "RandomForestClassifier",
    "accuracy_score",
    "tree_shape_stats",
    "forest_shape_stats",
    "save_forest",
    "load_forest",
]
