"""CART decision-tree builder (Gini impurity).

Implements the training substrate the paper delegates to scikit-learn's
``RandomForestClassifier``.  Two split finders are provided:

* ``splitter="hist"`` (default): features are pre-quantised into at most
  ``max_bins`` quantile bins; each node builds per-feature class histograms
  with one vectorised pass and evaluates every bin boundary at once.  This is
  the LightGBM-style approach and is what makes training forests of depth
  30-50 tractable in pure NumPy.
* ``splitter="exact"``: classic sort-based CART used by scikit-learn; exact
  but O(n log n) per feature per node.  Kept for cross-validation of the
  histogram splitter in the test suite.

Both honour ``max_depth``, ``min_samples_split``, ``min_samples_leaf`` and
``max_features`` (feature subsampling per node, as random forests require).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.forest.tree import DecisionTree, LEAF
from repro.utils.rng import as_rng
from repro.utils.validation import check_array_2d, check_positive_int


@dataclass
class _Split:
    """Result of a split search at one node."""

    feature: int
    threshold: float
    gain: float
    # For the histogram splitter: samples with bin <= bin_split go left.
    bin_split: int = -1


def _resolve_max_features(max_features: Union[str, int, float, None], n_features: int) -> int:
    """Translate a scikit-learn-style ``max_features`` spec into a count."""
    if max_features is None or max_features == "all":
        return n_features
    if max_features == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if max_features == "log2":
        return max(1, int(np.log2(n_features))) if n_features > 1 else 1
    if isinstance(max_features, (int, np.integer)) and not isinstance(max_features, bool):
        if not 1 <= max_features <= n_features:
            raise ValueError(
                f"max_features={max_features} outside [1, {n_features}]"
            )
        return int(max_features)
    if isinstance(max_features, float):
        if not 0.0 < max_features <= 1.0:
            raise ValueError(f"max_features fraction must be in (0, 1], got {max_features}")
        return max(1, int(round(max_features * n_features)))
    raise TypeError(f"cannot interpret max_features={max_features!r}")


class FeatureBinner:
    """Quantile pre-binning of a feature matrix for histogram splitting.

    Bin edges are the unique quantiles of each feature; a value ``v`` maps to
    the number of edges strictly below it, so the split test
    ``bin(v) <= b``  is exactly equivalent to ``v < edge[b]`` — the float
    threshold written into the tree therefore reproduces the binned decision
    on the training data and generalises to unseen values.
    """

    def __init__(self, max_bins: int = 256):
        self.max_bins = check_positive_int(max_bins, "max_bins", minimum=2)
        self.edges_: Optional[list] = None

    def fit(self, X: np.ndarray) -> "FeatureBinner":
        """Compute per-feature bin edges from the training matrix."""
        X = check_array_2d(X, "X")
        edges = []
        quantiles = np.linspace(0, 1, self.max_bins + 1)[1:-1]
        for j in range(X.shape[1]):
            col = X[:, j]
            uniq = np.unique(col)
            if uniq.size <= 1:
                e = np.empty(0, dtype=np.float32)
            elif uniq.size <= self.max_bins:
                # One bin per distinct value; split points at midpoints.
                e = ((uniq[:-1] + uniq[1:]) / 2.0).astype(np.float32)
            else:
                e = np.unique(np.quantile(col, quantiles)).astype(np.float32)
            edges.append(e)
        self.edges_ = edges
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Map ``X`` to per-feature bin codes (``uint16``)."""
        if self.edges_ is None:
            raise RuntimeError("FeatureBinner.transform called before fit")
        X = check_array_2d(X, "X")
        if X.shape[1] != len(self.edges_):
            raise ValueError(
                f"X has {X.shape[1]} features, binner was fit on {len(self.edges_)}"
            )
        codes = np.empty(X.shape, dtype=np.uint16)
        for j, e in enumerate(self.edges_):
            codes[:, j] = np.searchsorted(e, X[:, j], side="left")
        return codes

    def n_bins(self, feature: int) -> int:
        """Number of occupied bins for ``feature`` (edges + 1)."""
        return len(self.edges_[feature]) + 1

    def threshold_for(self, feature: int, bin_split: int) -> float:
        """Float threshold equivalent to ``bin <= bin_split goes left``.

        ``transform`` maps ``v`` to ``#{edges < v}`` so ``code <= b`` is
        ``v <= edges[b]``; the tree's test is the strict ``v < threshold``,
        hence the threshold is the next float32 above the edge.
        """
        edge = np.float32(self.edges_[feature][bin_split])
        return float(np.nextafter(edge, np.float32(np.inf), dtype=np.float32))


def _gini_gain_from_counts(
    left_counts: np.ndarray, total_counts: np.ndarray
) -> np.ndarray:
    """Weighted Gini impurity decrease for every candidate split.

    Parameters
    ----------
    left_counts:
        ``float64[n_splits, n_classes]`` class counts going left.
    total_counts:
        ``float64[n_classes]`` class counts at the node.

    Returns
    -------
    ``float64[n_splits]`` impurity decrease (un-normalised by n; comparing
    within one node so the constant factor is irrelevant).  Invalid splits
    (empty side) get ``-inf``.
    """
    total = total_counts.sum()
    right_counts = total_counts[None, :] - left_counts
    n_left = left_counts.sum(axis=1)
    n_right = total - n_left
    with np.errstate(divide="ignore", invalid="ignore"):
        gini_left = n_left - (left_counts**2).sum(axis=1) / n_left
        gini_right = n_right - (right_counts**2).sum(axis=1) / n_right
    parent = total - (total_counts**2).sum() / total
    gain = parent - (np.nan_to_num(gini_left) + np.nan_to_num(gini_right))
    gain = np.where((n_left > 0) & (n_right > 0), gain, -np.inf)
    return gain


class TreeBuilder:
    """Grows a single CART tree on (possibly pre-binned) training data.

    Parameters
    ----------
    max_depth:
        Maximum node depth (root = 0); leaves are forced at this depth.
        ``None`` means unbounded.
    min_samples_split / min_samples_leaf:
        Standard CART stopping controls.
    max_features:
        Per-node feature subsample: ``"sqrt"``, ``"log2"``, ``"all"``/None,
        an int count or a float fraction.
    splitter:
        ``"hist"`` or ``"exact"`` (see module docstring).
    max_bins:
        Histogram resolution for ``splitter="hist"``.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Union[str, int, float, None] = "sqrt",
        splitter: str = "hist",
        max_bins: int = 256,
    ):
        if max_depth is not None:
            max_depth = check_positive_int(max_depth, "max_depth", minimum=0)
        self.max_depth = max_depth
        self.min_samples_split = check_positive_int(
            min_samples_split, "min_samples_split", minimum=2
        )
        self.min_samples_leaf = check_positive_int(
            min_samples_leaf, "min_samples_leaf", minimum=1
        )
        self.max_features = max_features
        if splitter not in ("hist", "exact"):
            raise ValueError(f"splitter must be 'hist' or 'exact', got {splitter!r}")
        self.splitter = splitter
        self.max_bins = max_bins

    # ------------------------------------------------------------------
    def build(
        self,
        X: np.ndarray,
        y: np.ndarray,
        n_classes: int,
        rng=None,
        binner: Optional[FeatureBinner] = None,
        codes: Optional[np.ndarray] = None,
    ) -> DecisionTree:
        """Train and return one :class:`DecisionTree`.

        ``binner``/``codes`` allow a forest to share the (expensive)
        quantisation across its trees; when omitted they are computed here.
        """
        rng = as_rng(rng)
        X = check_array_2d(X, "X")
        y = np.asarray(y, dtype=np.int32)
        if y.ndim != 1 or y.shape[0] != X.shape[0]:
            raise ValueError("y must be 1-D and aligned with X")
        if np.any((y < 0) | (y >= n_classes)):
            raise ValueError("labels must lie in [0, n_classes)")
        n_samples, n_features = X.shape
        k_features = _resolve_max_features(self.max_features, n_features)

        if self.splitter == "hist":
            if binner is None:
                binner = FeatureBinner(self.max_bins).fit(X)
            if codes is None:
                codes = binner.transform(X)
            return self._build_hist(X, codes, y, n_classes, k_features, rng, binner)
        return self._build_exact(X, y, n_classes, k_features, rng)

    # ------------------------------------------------------------------
    # Shared growth loop
    # ------------------------------------------------------------------
    def _grow(self, n_samples, y, n_classes, find_split, partition) -> DecisionTree:
        """Generic depth-first growth loop.

        ``find_split(idx)`` returns a :class:`_Split` or ``None``;
        ``partition(idx, split)`` returns ``(left_idx, right_idx)``.
        """
        feature, threshold, left, right, value, depths = [], [], [], [], [], []
        samples = []

        def new_node(depth: int) -> int:
            i = len(feature)
            feature.append(LEAF)
            threshold.append(0.0)
            left.append(-1)
            right.append(-1)
            value.append(0)
            depths.append(depth)
            samples.append(0)
            return i

        def majority(idx: np.ndarray) -> int:
            counts = np.bincount(y[idx], minlength=n_classes)
            return int(counts.argmax())

        root_idx = np.arange(n_samples, dtype=np.int64)
        root = new_node(0)
        stack = [(root, root_idx)]
        while stack:
            node, idx = stack.pop()
            d = depths[node]
            samples[node] = idx.size
            counts = np.bincount(y[idx], minlength=n_classes)
            pure = np.count_nonzero(counts) <= 1
            depth_stop = self.max_depth is not None and d >= self.max_depth
            if pure or depth_stop or idx.size < self.min_samples_split:
                value[node] = int(counts.argmax())
                continue
            split = find_split(idx)
            if split is None:
                value[node] = majority(idx)
                continue
            left_idx, right_idx = partition(idx, split)
            if (
                left_idx.size < self.min_samples_leaf
                or right_idx.size < self.min_samples_leaf
            ):
                value[node] = majority(idx)
                continue
            feature[node] = split.feature
            threshold[node] = split.threshold
            value[node] = -1
            l = new_node(d + 1)
            r = new_node(d + 1)
            left[node], right[node] = l, r
            stack.append((r, right_idx))
            stack.append((l, left_idx))

        return DecisionTree(
            feature=np.array(feature, dtype=np.int32),
            threshold=np.array(threshold, dtype=np.float32),
            left_child=np.array(left, dtype=np.int32),
            right_child=np.array(right, dtype=np.int32),
            value=np.array(value, dtype=np.int32),
            n_classes=n_classes,
            depth=np.array(depths, dtype=np.int32),
            n_samples=np.array(samples, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # Histogram splitter
    # ------------------------------------------------------------------
    def _build_hist(self, X, codes, y, n_classes, k_features, rng, binner):
        n_features = X.shape[1]
        min_leaf = self.min_samples_leaf

        def find_split(idx: np.ndarray) -> Optional[_Split]:
            feats = rng.choice(n_features, size=k_features, replace=False)
            ysub = y[idx]
            total = np.bincount(ysub, minlength=n_classes).astype(np.float64)
            best: Optional[_Split] = None
            for f in feats:
                nb = binner.n_bins(int(f))
                if nb <= 1:
                    continue
                c = codes[idx, f].astype(np.int64)
                # Class histogram per bin: hist[bin, class]
                hist = np.zeros((nb, n_classes), dtype=np.float64)
                np.add.at(hist, (c, ysub), 1.0)
                cum = np.cumsum(hist, axis=0)[:-1]  # splits after bins 0..nb-2
                gains = _gini_gain_from_counts(cum, total)
                # Enforce min_samples_leaf at the candidate level.
                n_left = cum.sum(axis=1)
                ok = (n_left >= min_leaf) & (idx.size - n_left >= min_leaf)
                gains = np.where(ok, gains, -np.inf)
                b = int(gains.argmax())
                if gains[b] > 0 and (best is None or gains[b] > best.gain):
                    best = _Split(
                        feature=int(f),
                        threshold=binner.threshold_for(int(f), b),
                        gain=float(gains[b]),
                        bin_split=b,
                    )
            return best

        def partition(idx: np.ndarray, split: _Split):
            mask = codes[idx, split.feature] <= split.bin_split
            return idx[mask], idx[~mask]

        return self._grow(X.shape[0], y, n_classes, find_split, partition)

    # ------------------------------------------------------------------
    # Exact splitter
    # ------------------------------------------------------------------
    def _build_exact(self, X, y, n_classes, k_features, rng):
        n_features = X.shape[1]
        min_leaf = self.min_samples_leaf

        def find_split(idx: np.ndarray) -> Optional[_Split]:
            feats = rng.choice(n_features, size=k_features, replace=False)
            ysub = y[idx]
            total = np.bincount(ysub, minlength=n_classes).astype(np.float64)
            best: Optional[_Split] = None
            for f in feats:
                col = X[idx, f]
                order = np.argsort(col, kind="stable")
                sv = col[order]
                sy = ysub[order]
                # Candidate boundaries: positions where the value changes.
                change = np.flatnonzero(sv[1:] > sv[:-1])
                if change.size == 0:
                    continue
                onehot = np.zeros((idx.size, n_classes), dtype=np.float64)
                onehot[np.arange(idx.size, dtype=np.int64), sy] = 1.0
                cum = np.cumsum(onehot, axis=0)
                left_counts = cum[change]
                gains = _gini_gain_from_counts(left_counts, total)
                n_left = change + 1
                ok = (n_left >= min_leaf) & (idx.size - n_left >= min_leaf)
                gains = np.where(ok, gains, -np.inf)
                b = int(gains.argmax())
                if gains[b] > 0 and (best is None or gains[b] > best.gain):
                    thr = float((sv[change[b]] + sv[change[b] + 1]) / 2.0)
                    best = _Split(feature=int(f), threshold=thr, gain=float(gains[b]))
            return best

        def partition(idx: np.ndarray, split: _Split):
            mask = X[idx, split.feature] < split.threshold
            return idx[mask], idx[~mask]

        return self._grow(X.shape[0], y, n_classes, find_split, partition)
