"""Accuracy and tree-shape statistics.

The paper's analysis hinges on tree *shape*: depth, sparsity, and the
leaf-to-node ratio drive both the hierarchical layout's padding overhead
(Fig. 6) and the traversal cost models.  These helpers compute those shape
statistics for single trees and whole forests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.forest.tree import DecisionTree, LEAF


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correctly classified queries (paper's accuracy metric)."""
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("cannot score empty label arrays")
    return float(np.mean(y_true == y_pred))


@dataclass
class TreeShapeStats:
    """Shape summary of one decision tree."""

    n_nodes: int
    n_leaves: int
    max_depth: int
    mean_leaf_depth: float
    #: Fraction of nodes that are leaves above the deepest level — the
    #: quantity Fig. 6's discussion links to hierarchical padding overhead.
    early_leaf_fraction: float
    #: Node occupancy vs. a full tree of the same depth (sparsity indicator).
    density: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "n_nodes": self.n_nodes,
            "n_leaves": self.n_leaves,
            "max_depth": self.max_depth,
            "mean_leaf_depth": self.mean_leaf_depth,
            "early_leaf_fraction": self.early_leaf_fraction,
            "density": self.density,
        }


def tree_shape_stats(tree: DecisionTree) -> TreeShapeStats:
    """Compute :class:`TreeShapeStats` for one tree."""
    leaf_mask = tree.feature == LEAF
    leaf_depths = tree.depth[leaf_mask]
    max_depth = tree.max_depth
    early_leaves = int(np.count_nonzero(leaf_depths < max_depth))
    full_nodes = float(2 ** (max_depth + 1) - 1)
    return TreeShapeStats(
        n_nodes=tree.n_nodes,
        n_leaves=int(leaf_mask.sum()),
        max_depth=max_depth,
        mean_leaf_depth=float(leaf_depths.mean()),
        early_leaf_fraction=early_leaves / max(1, int(leaf_mask.sum())),
        density=tree.n_nodes / full_nodes,
    )


def forest_shape_stats(trees: List[DecisionTree]) -> Dict[str, float]:
    """Aggregate shape statistics over a forest (means across trees)."""
    if not trees:
        raise ValueError("forest_shape_stats needs at least one tree")
    per_tree = [tree_shape_stats(t) for t in trees]
    return {
        "n_trees": len(trees),
        "total_nodes": sum(s.n_nodes for s in per_tree),
        "total_leaves": sum(s.n_leaves for s in per_tree),
        "max_depth": max(s.max_depth for s in per_tree),
        "mean_depth": float(np.mean([s.max_depth for s in per_tree])),
        "mean_leaf_depth": float(np.mean([s.mean_leaf_depth for s in per_tree])),
        "mean_early_leaf_fraction": float(
            np.mean([s.early_leaf_fraction for s in per_tree])
        ),
        "mean_density": float(np.mean([s.density for s in per_tree])),
    }
