"""Array-based decision tree structure.

A :class:`DecisionTree` stores one trained CART tree as a struct-of-arrays,
the same canonical form scikit-learn's ``tree_`` attribute exposes.  Every
memory layout in :mod:`repro.layout` (CSR, hierarchical) is a pure function of
this structure, and the CPU reference traversal in
:mod:`repro.baselines.cpu_reference` interprets it directly.

Node conventions (matching the paper's Fig. 2):

* Inner node ``i``: ``feature[i] >= 0`` and the split test is
  ``x[feature[i]] < threshold[i]`` — true goes to ``left_child[i]``,
  false to ``right_child[i]``.
* Leaf node ``i``: ``feature[i] == LEAF`` (-1); ``value[i]`` holds the class
  label the leaf returns.
* Node 0 is always the root.  Every non-root node has exactly one parent and
  inner nodes always have exactly two children (CART produces strictly
  binary trees).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Tuple

import numpy as np

#: ``feature`` marker for leaf nodes (paper uses -1 in the CSR node table).
LEAF: int = -1
#: ``feature`` marker for padding/null nodes in padded layouts (never appears
#: in a :class:`DecisionTree` itself, only in derived layouts).
EMPTY: int = -2


@dataclass
class DecisionTree:
    """A trained binary decision tree in struct-of-arrays form.

    Attributes
    ----------
    feature:
        ``int32[n_nodes]``; split feature index for inner nodes, :data:`LEAF`
        for leaves.
    threshold:
        ``float32[n_nodes]``; split threshold for inner nodes, unused
        (0.0) for leaves.
    left_child, right_child:
        ``int32[n_nodes]``; child node ids for inner nodes, -1 for leaves.
    value:
        ``int32[n_nodes]``; predicted class label for leaves, -1 for inner
        nodes.
    n_classes:
        Number of distinct class labels the tree can emit.
    """

    feature: np.ndarray
    threshold: np.ndarray
    left_child: np.ndarray
    right_child: np.ndarray
    value: np.ndarray
    n_classes: int = 2
    #: Depth of each node (root = 0); computed lazily if not provided.
    depth: np.ndarray = field(default=None, repr=False)
    #: Training samples that reached each node (recorded by TreeBuilder;
    #: None for synthetic trees).  Used by depth truncation to label cut
    #: nodes with their true sample-majority class.
    n_samples: np.ndarray = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.feature = np.asarray(self.feature, dtype=np.int32)
        self.threshold = np.asarray(self.threshold, dtype=np.float32)
        self.left_child = np.asarray(self.left_child, dtype=np.int32)
        self.right_child = np.asarray(self.right_child, dtype=np.int32)
        self.value = np.asarray(self.value, dtype=np.int32)
        n = self.feature.shape[0]
        for name in ("threshold", "left_child", "right_child", "value"):
            if getattr(self, name).shape[0] != n:
                raise ValueError(
                    f"{name} has length {getattr(self, name).shape[0]}, "
                    f"expected {n} (length of feature array)"
                )
        if n == 0:
            raise ValueError("a decision tree must have at least one node")
        if self.depth is None:
            self.depth = self._compute_depths()
        else:
            self.depth = np.asarray(self.depth, dtype=np.int32)
        if self.n_samples is not None:
            self.n_samples = np.asarray(self.n_samples, dtype=np.int64)
            if self.n_samples.shape[0] != n:
                raise ValueError("n_samples length mismatch")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Total number of nodes (inner + leaf)."""
        return int(self.feature.shape[0])

    @property
    def n_leaves(self) -> int:
        """Number of leaf nodes."""
        return int(np.count_nonzero(self.feature == LEAF))

    @property
    def max_depth(self) -> int:
        """Depth of the deepest node (root has depth 0)."""
        return int(self.depth.max())

    def is_leaf(self, node: int) -> bool:
        """Return True if ``node`` is a leaf."""
        return bool(self.feature[node] == LEAF)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def leaf(cls, label: int, n_classes: int = 2) -> "DecisionTree":
        """A degenerate single-node tree that always predicts ``label``."""
        return cls(
            feature=np.array([LEAF], dtype=np.int32),
            threshold=np.zeros(1, dtype=np.float32),
            left_child=np.full(1, -1, dtype=np.int32),
            right_child=np.full(1, -1, dtype=np.int32),
            value=np.array([label], dtype=np.int32),
            n_classes=n_classes,
        )

    def _compute_depths(self) -> np.ndarray:
        """BFS from the root to assign a depth to every node."""
        depth = np.full(self.n_nodes, -1, dtype=np.int32)
        depth[0] = 0
        frontier = np.array([0], dtype=np.int32)
        while frontier.size:
            inner = frontier[self.feature[frontier] != LEAF]
            children = np.concatenate(
                [self.left_child[inner], self.right_child[inner]]
            )
            children = children[children >= 0]
            if children.size:
                parent_depth = np.concatenate([depth[inner], depth[inner]])
                depth[children] = parent_depth[: children.size] + 1
            frontier = children
        if np.any(depth < 0):
            unreachable = int(np.count_nonzero(depth < 0))
            raise ValueError(
                f"tree has {unreachable} nodes unreachable from the root"
            )
        return depth

    # ------------------------------------------------------------------
    # Traversal / prediction (reference semantics)
    # ------------------------------------------------------------------
    def decision_path(self, x: np.ndarray) -> Iterator[int]:
        """Yield the node ids visited classifying a single sample ``x``."""
        node = 0
        while True:
            yield node
            f = int(self.feature[node])
            if f == LEAF:
                return
            if x[f] < self.threshold[node]:
                node = int(self.left_child[node])
            else:
                node = int(self.right_child[node])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Vectorised level-synchronous prediction for a batch of samples.

        All queries advance one level per iteration; finished queries park on
        their leaf (whose children are -1, handled by masking).  This is the
        same lock-step discipline the simulated kernels use and serves as the
        library's ground truth.
        """
        X = np.ascontiguousarray(X, dtype=np.float32)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        cur = np.zeros(X.shape[0], dtype=np.int64)
        active = self.feature[cur] != LEAF
        rows = np.arange(X.shape[0], dtype=np.int64)
        while np.any(active):
            idx = cur[active]
            feats = self.feature[idx]
            go_left = X[rows[active], feats] < self.threshold[idx]
            nxt = np.where(go_left, self.left_child[idx], self.right_child[idx])
            cur[active] = nxt
            active_idx = np.flatnonzero(active)
            still = self.feature[nxt] != LEAF
            active[active_idx] = still
        return self.value[cur].astype(np.int64)

    # ------------------------------------------------------------------
    # Structural validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise ``ValueError`` on violation.

        Invariants: children ids in range; inner nodes have two distinct
        children; leaves have none; each non-root node has exactly one
        parent; leaf values are valid class labels.
        """
        n = self.n_nodes
        inner = self.feature >= 0
        leaf = self.feature == LEAF
        if not np.all(inner | leaf):
            bad = np.flatnonzero(~(inner | leaf))
            raise ValueError(f"nodes {bad[:5].tolist()} have invalid feature ids")
        lc, rc = self.left_child, self.right_child
        if np.any((lc[inner] < 0) | (lc[inner] >= n)):
            raise ValueError("inner node with out-of-range left child")
        if np.any((rc[inner] < 0) | (rc[inner] >= n)):
            raise ValueError("inner node with out-of-range right child")
        if np.any(lc[inner] == rc[inner]):
            raise ValueError("inner node whose children coincide")
        if np.any(lc[leaf] != -1) or np.any(rc[leaf] != -1):
            raise ValueError("leaf node with children")
        parents = np.zeros(n, dtype=np.int64)
        np.add.at(parents, lc[inner], 1)
        np.add.at(parents, rc[inner], 1)
        if parents[0] != 0:
            raise ValueError("root node has a parent")
        if n > 1 and np.any(parents[1:] != 1):
            bad = np.flatnonzero(parents[1:] != 1)[:5] + 1
            raise ValueError(f"nodes {bad.tolist()} do not have exactly one parent")
        vals = self.value[leaf]
        if np.any((vals < 0) | (vals >= self.n_classes)):
            raise ValueError("leaf value outside [0, n_classes)")

    def node_count_by_depth(self) -> np.ndarray:
        """Number of nodes at each depth level (index = depth)."""
        return np.bincount(self.depth, minlength=self.max_depth + 1)

    def subtree_sizes(self) -> np.ndarray:
        """Return, for every node, the size of the subtree rooted there."""
        sizes = np.ones(self.n_nodes, dtype=np.int64)
        # Process nodes deepest-first so children are done before parents.
        order = np.argsort(self.depth)[::-1]
        for node in order:
            if self.feature[node] != LEAF:
                sizes[node] += sizes[self.left_child[node]]
                sizes[node] += sizes[self.right_child[node]]
        return sizes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DecisionTree(n_nodes={self.n_nodes}, n_leaves={self.n_leaves}, "
            f"max_depth={self.max_depth}, n_classes={self.n_classes})"
        )


def random_tree(
    rng,
    n_features: int,
    max_depth: int,
    leaf_prob: float = 0.3,
    n_classes: int = 2,
    min_nodes: int = 1,
) -> DecisionTree:
    """Generate a random tree topology (for tests and synthetic workloads).

    Grows a binary tree top-down: each node at depth < ``max_depth`` becomes a
    leaf with probability ``leaf_prob``, otherwise an inner node with two
    children.  Nodes at ``max_depth`` are always leaves.  Useful to exercise
    layouts and kernels on controlled shapes (e.g. Table 3's synthetic
    forest) without paying for training.
    """
    from repro.utils.rng import as_rng

    rng = as_rng(rng)
    if n_features < 1:
        raise ValueError("n_features must be >= 1")
    if max_depth < 0:
        raise ValueError("max_depth must be >= 0")

    feature, threshold, left, right, value, depths = [], [], [], [], [], []

    def add_node(depth: int) -> int:
        idx = len(feature)
        feature.append(0)
        threshold.append(0.0)
        left.append(-1)
        right.append(-1)
        value.append(-1)
        depths.append(depth)
        return idx

    # Iterative growth with an explicit stack (post-order child creation).
    root = add_node(0)
    stack = [root]
    while stack:
        node = stack.pop()
        d = depths[node]
        force_inner = node == root and max_depth > 0 and min_nodes > 1
        is_leaf = d >= max_depth or (rng.random() < leaf_prob and not force_inner)
        if is_leaf:
            feature[node] = LEAF
            value[node] = int(rng.integers(n_classes))
        else:
            feature[node] = int(rng.integers(n_features))
            threshold[node] = float(rng.normal())
            l = add_node(d + 1)
            r = add_node(d + 1)
            left[node], right[node] = l, r
            stack.append(l)
            stack.append(r)

    return DecisionTree(
        feature=np.array(feature, dtype=np.int32),
        threshold=np.array(threshold, dtype=np.float32),
        left_child=np.array(left, dtype=np.int32),
        right_child=np.array(right, dtype=np.int32),
        value=np.array(value, dtype=np.int32),
        n_classes=n_classes,
        depth=np.array(depths, dtype=np.int32),
    )
