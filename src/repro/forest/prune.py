"""Depth truncation of trained trees.

Truncating a depth-D tree at depth d < D replaces every depth-d subtree
with a leaf predicting that subtree's majority class — exactly the tree a
CART run capped at ``max_depth=d`` would have produced *given the same
splits*, because greedy split choice at a node does not depend on the depth
budget below it (stopping rules aside).

This enables a large experimental saving the paper's grid structure
invites: train one deep forest per dataset and derive every shallower depth
from it, instead of retraining per depth (Fig. 5's depth axis, Fig. 7's
depth bands).  It is also a practical deployment knob — the fraud example
trades depth for latency without retraining.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.forest.random_forest import RandomForestClassifier
from repro.forest.tree import LEAF, DecisionTree
from repro.utils.validation import check_positive_int


def _subtree_class_counts(tree: DecisionTree) -> np.ndarray:
    """Leaf-class weights of the subtree under every node.

    With per-node training-sample counts (recorded by TreeBuilder) each
    leaf contributes its sample count to its predicted class, so a cut
    node's majority equals the sample-majority a depth-capped training run
    would have assigned.  Synthetic trees without counts fall back to
    unweighted leaves.
    """
    counts = np.zeros((tree.n_nodes, tree.n_classes), dtype=np.int64)
    leaf = tree.feature == LEAF
    leaf_idx = np.flatnonzero(leaf)
    if tree.n_samples is not None:
        counts[leaf_idx, tree.value[leaf]] = tree.n_samples[leaf_idx]
    else:
        counts[leaf_idx, tree.value[leaf]] = 1
    order = np.argsort(tree.depth)[::-1]
    for node in order:
        if tree.feature[node] != LEAF:
            counts[node] = (
                counts[tree.left_child[node]] + counts[tree.right_child[node]]
            )
    return counts


def truncate_depth(tree: DecisionTree, max_depth: int) -> DecisionTree:
    """Return a copy of ``tree`` truncated to ``max_depth`` levels.

    Nodes at ``max_depth`` become leaves labelled with their subtree's
    majority class.  Node ids are re-compacted; the result validates.
    """
    check_positive_int(max_depth, "max_depth", minimum=0)
    if tree.max_depth <= max_depth:
        return tree
    counts = _subtree_class_counts(tree)

    keep = tree.depth <= max_depth
    new_id = np.full(tree.n_nodes, -1, dtype=np.int64)
    new_id[keep] = np.arange(int(keep.sum()), dtype=np.int64)

    feature = tree.feature[keep].copy()
    threshold = tree.threshold[keep].copy()
    value = tree.value[keep].copy()
    depth = tree.depth[keep].copy()
    n_samples = None if tree.n_samples is None else tree.n_samples[keep].copy()
    left = np.full(feature.shape[0], -1, dtype=np.int32)
    right = np.full(feature.shape[0], -1, dtype=np.int32)

    cut = tree.depth[keep] == max_depth
    inner_cut = cut & (tree.feature[keep] != LEAF)
    # Cut inner nodes become majority leaves.
    old_ids = np.flatnonzero(keep)
    maj = counts[old_ids].argmax(axis=1)
    feature[inner_cut] = LEAF
    threshold[inner_cut] = 0.0
    value[inner_cut] = maj[inner_cut]

    survivors = ~cut & (tree.feature[keep] != LEAF)
    old_inner = old_ids[survivors]
    left[survivors] = new_id[tree.left_child[old_inner]]
    right[survivors] = new_id[tree.right_child[old_inner]]
    value[survivors] = -1

    return DecisionTree(
        feature=feature,
        threshold=threshold,
        left_child=left,
        right_child=right,
        value=value,
        n_classes=tree.n_classes,
        depth=depth,
        n_samples=n_samples,
    )


def truncate_forest(
    forest: RandomForestClassifier, max_depth: int
) -> RandomForestClassifier:
    """Truncate every tree of a fitted forest (returns a new forest)."""
    forest._check_fitted()
    trees: List[DecisionTree] = [
        truncate_depth(t, max_depth) for t in forest.trees_
    ]
    out = RandomForestClassifier.from_trees(trees, forest.n_features_)
    out.n_classes_ = forest.n_classes_
    return out


def depth_sweep(
    forest: RandomForestClassifier, depths: Sequence[int]
) -> List[RandomForestClassifier]:
    """One truncated forest per requested depth (descending efficiency:
    each truncation starts from the original forest)."""
    return [truncate_forest(forest, d) for d in depths]
