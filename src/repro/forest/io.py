"""Forest serialisation (single-file ``.npz``).

Training deep forests dominates the wall-clock of the experiment pipeline, so
the harness caches trained forests on disk.  The format is one compressed
``.npz`` holding the concatenated node arrays plus per-tree offsets — the same
struct-of-arrays discipline used everywhere else, so loading is a handful of
slices with no per-node Python work.
"""

from __future__ import annotations

import os
from typing import List, Tuple

import numpy as np

from repro.forest.random_forest import RandomForestClassifier
from repro.forest.tree import DecisionTree

_FORMAT_VERSION = 2


def save_forest(path: str, forest: RandomForestClassifier) -> None:
    """Serialise a fitted forest to ``path`` (``.npz`` appended if missing)."""
    forest._check_fitted()
    trees = forest.trees_
    offsets = np.zeros(len(trees) + 1, dtype=np.int64)
    for i, t in enumerate(trees):
        offsets[i + 1] = offsets[i] + t.n_nodes
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        n_classes=np.int64(forest.n_classes_),
        n_features=np.int64(forest.n_features_),
        tree_offsets=offsets,
        feature=np.concatenate([t.feature for t in trees]),
        threshold=np.concatenate([t.threshold for t in trees]),
        left_child=np.concatenate([t.left_child for t in trees]),
        right_child=np.concatenate([t.right_child for t in trees]),
        value=np.concatenate([t.value for t in trees]),
        depth=np.concatenate([t.depth for t in trees]),
        n_samples=np.concatenate(
            [
                t.n_samples
                if t.n_samples is not None
                else np.full(t.n_nodes, -1, dtype=np.int64)
                for t in trees
            ]
        ),
    )


def load_forest(path: str) -> RandomForestClassifier:
    """Load a forest previously written by :func:`save_forest`."""
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    with np.load(path) as data:
        version = int(data["version"])
        if version not in (1, _FORMAT_VERSION):
            raise ValueError(
                f"unsupported forest file version {version} "
                f"(expected <= {_FORMAT_VERSION})"
            )
        offsets = data["tree_offsets"]
        n_classes = int(data["n_classes"])
        trees: List[DecisionTree] = []
        for i in range(len(offsets) - 1):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            n_samples = None
            if version >= 2:
                ns = data["n_samples"][lo:hi]
                if ns[0] >= 0:
                    n_samples = ns
            trees.append(
                DecisionTree(
                    feature=data["feature"][lo:hi],
                    threshold=data["threshold"][lo:hi],
                    left_child=data["left_child"][lo:hi],
                    right_child=data["right_child"][lo:hi],
                    value=data["value"][lo:hi],
                    n_classes=n_classes,
                    depth=data["depth"][lo:hi],
                    n_samples=n_samples,
                )
            )
        return RandomForestClassifier.from_trees(trees, int(data["n_features"]))
