"""Forest serialisation (single-file ``.npz``).

Training deep forests dominates the wall-clock of the experiment pipeline, so
the harness caches trained forests on disk.  The format is one compressed
``.npz`` holding the concatenated node arrays plus per-tree offsets — the same
struct-of-arrays discipline used everywhere else, so loading is a handful of
slices with no per-node Python work.

Format history:

* v1 — node arrays + offsets.
* v2 — adds per-node ``n_samples``.
* v3 — adds per-array CRC32 checksums, verified on load.  A silently
  corrupted cache would poison every experiment that shares it, so damage
  (truncation, bit rot, interrupted writes) surfaces as a clear
  :class:`ForestIntegrityError` instead of a cryptic ``zipfile``/``KeyError``
  deep inside NumPy.  v1/v2 files still load (without checksum coverage).
* v4 — adds the precision axis: ``save_forest(..., codec=...)`` stores the
  threshold channel codec-encoded (float16 / int8; ``packed`` uses the
  int8 threshold encoding — record packing is a device-layout concern),
  plus the per-feature affine calibration tables and a per-array codec-tag
  table, all CRC-covered.  v1–v3 files keep loading byte-for-byte.
"""

from __future__ import annotations

import os
import zipfile
import zlib
from typing import List

import numpy as np

from repro.forest.random_forest import RandomForestClassifier
from repro.forest.tree import DecisionTree
from repro.utils.validation import array_crc32

_FORMAT_VERSION = 4

#: Arrays covered by the v3 checksums, in stored order.
_CHECKSUMMED = (
    "tree_offsets",
    "feature",
    "threshold",
    "left_child",
    "right_child",
    "value",
    "depth",
    "n_samples",
)

#: v4 extends checksum coverage to the codec calibration tables.
_CHECKSUMMED_V4 = _CHECKSUMMED + ("threshold_scale", "threshold_offset")


class ForestIntegrityError(ValueError):
    """A cached forest file is truncated, corrupt, or fails its checksums."""


def _encode_thresholds(threshold, feature, n_features, codec: str):
    """Codec-encode the threshold channel for v4 storage.

    Returns ``(stored, scale, offset, tag)``; ``tag`` is the per-array
    codec tag recorded in ``array_codecs``.  ``packed`` shares the int8
    threshold encoding — node-record packing is a device-layout concern,
    not a file-format one.
    """
    from repro.layout.codec import get_codec

    empty = np.empty(0, dtype=np.float32)
    if codec == "float32":
        return threshold.astype(np.float32), empty, empty, "float32"
    resolved = get_codec(codec)
    inner = feature >= 0
    feats = np.where(inner, feature, 0).astype(np.int64)
    codes, scale, offset = resolved.encode_thresholds(
        threshold.astype(np.float32), feats, int(n_features), mask=inner
    )
    codes = np.where(inner, codes, np.zeros(1, dtype=codes.dtype))
    return codes, scale, offset, resolved.threshold_dtype.name


def save_forest(
    path: str, forest: RandomForestClassifier, codec: str = "float32"
) -> None:
    """Serialise a fitted forest to ``path`` (``.npz`` appended if missing).

    ``codec`` selects the precision-axis encoding of the stored threshold
    channel (:data:`repro.layout.codec.PRECISIONS`).
    """
    from repro.layout.codec import get_codec

    get_codec(codec)  # validate the name before writing anything
    forest._check_fitted()
    trees = forest.trees_
    offsets = np.zeros(len(trees) + 1, dtype=np.int64)
    for i, t in enumerate(trees):
        offsets[i + 1] = offsets[i] + t.n_nodes
    feature = np.concatenate([t.feature for t in trees])
    threshold, scale, offset, tag = _encode_thresholds(
        np.concatenate([t.threshold for t in trees]),
        feature,
        forest.n_features_,
        codec,
    )
    arrays = {
        "tree_offsets": offsets,
        "feature": feature,
        "threshold": threshold,
        "left_child": np.concatenate([t.left_child for t in trees]),
        "right_child": np.concatenate([t.right_child for t in trees]),
        "value": np.concatenate([t.value for t in trees]),
        "depth": np.concatenate([t.depth for t in trees]),
        "n_samples": np.concatenate(
            [
                t.n_samples
                if t.n_samples is not None
                else np.full(t.n_nodes, -1, dtype=np.int64)
                for t in trees
            ]
        ),
        "threshold_scale": scale,
        "threshold_offset": offset,
    }
    tags = ["raw"] * len(_CHECKSUMMED_V4)
    tags[_CHECKSUMMED_V4.index("threshold")] = tag
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        n_classes=np.int64(forest.n_classes_),
        n_features=np.int64(forest.n_features_),
        codec=np.str_(codec),
        array_codecs=np.asarray(tags),
        array_checksums=np.asarray(
            [array_crc32(arrays[name]) for name in _CHECKSUMMED_V4],
            dtype=np.uint32,
        ),
        **arrays,
    )


def _verify_checksums(data, path: str, names) -> None:
    """Compare each stored array against its build-time CRC32."""
    stored = data["array_checksums"]
    if stored.shape[0] != len(names):
        raise ForestIntegrityError(
            f"forest file {path!r}: checksum table has {stored.shape[0]} "
            f"entries, expected {len(names)}"
        )
    bad = [
        name
        for name, crc in zip(names, stored)
        if array_crc32(data[name]) != int(crc)
    ]
    if bad:
        raise ForestIntegrityError(
            f"forest file {path!r} failed checksum verification for "
            f"array(s): {', '.join(bad)} — the cache entry is corrupt; "
            "delete it and retrain"
        )


def _decode_thresholds(data, path: str) -> np.ndarray:
    """Recover the float32 threshold channel from a v4 file."""
    from repro.layout.codec import get_codec

    codec = str(data["codec"])
    tags = [str(t) for t in data["array_codecs"]]
    if len(tags) != len(_CHECKSUMMED_V4):
        raise ForestIntegrityError(
            f"forest file {path!r}: codec-tag table has {len(tags)} "
            f"entries, expected {len(_CHECKSUMMED_V4)}"
        )
    stored = data["threshold"]
    tag = tags[_CHECKSUMMED_V4.index("threshold")]
    if codec == "float32":
        if tag != "float32":
            raise ForestIntegrityError(
                f"forest file {path!r}: float32 forest carries codec tag "
                f"{tag!r}"
            )
        return stored
    resolved = get_codec(codec)
    if tag != resolved.threshold_dtype.name or stored.dtype != resolved.threshold_dtype:
        raise ForestIntegrityError(
            f"forest file {path!r}: threshold array dtype "
            f"{stored.dtype.name!r} / tag {tag!r} do not match codec "
            f"{codec!r}"
        )
    feature = data["feature"]
    inner = feature >= 0
    feats = np.where(inner, feature, 0).astype(np.int64)
    decoded = resolved.decode_thresholds(
        stored, feats, data["threshold_scale"], data["threshold_offset"]
    )
    return np.where(inner, decoded, np.float32(0.0)).astype(np.float32)


def _decode(data, path: str) -> RandomForestClassifier:
    version = int(data["version"])
    if version not in (1, 2, 3, _FORMAT_VERSION):
        raise ForestIntegrityError(
            f"unsupported forest file version {version} "
            f"(expected <= {_FORMAT_VERSION})"
        )
    if version == 3:
        _verify_checksums(data, path, _CHECKSUMMED)
    elif version >= 4:
        _verify_checksums(data, path, _CHECKSUMMED_V4)
    offsets = data["tree_offsets"]
    n_classes = int(data["n_classes"])
    threshold = (
        _decode_thresholds(data, path) if version >= 4 else data["threshold"]
    )
    trees: List[DecisionTree] = []
    for i in range(len(offsets) - 1):
        lo, hi = int(offsets[i]), int(offsets[i + 1])
        n_samples = None
        if version >= 2:
            ns = data["n_samples"][lo:hi]
            if ns[0] >= 0:
                n_samples = ns
        trees.append(
            DecisionTree(
                feature=data["feature"][lo:hi],
                threshold=threshold[lo:hi],
                left_child=data["left_child"][lo:hi],
                right_child=data["right_child"][lo:hi],
                value=data["value"][lo:hi],
                n_classes=n_classes,
                depth=data["depth"][lo:hi],
                n_samples=n_samples,
            )
        )
    rf = RandomForestClassifier.from_trees(trees, int(data["n_features"]))
    # Which precision axis the thresholds round-tripped through (v4).
    rf.codec_ = str(data["codec"]) if version >= 4 else "float32"
    return rf


def load_forest(path: str) -> RandomForestClassifier:
    """Load a forest previously written by :func:`save_forest`.

    Raises :class:`ForestIntegrityError` (a ``ValueError``) when the file is
    truncated, not a valid archive, missing arrays, or fails its v3
    checksums; a genuinely missing file still raises ``FileNotFoundError``.
    """
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    try:
        with np.load(path) as data:
            return _decode(data, path)
    except (ForestIntegrityError, FileNotFoundError):
        raise
    except (
        zipfile.BadZipFile,
        zlib.error,
        KeyError,
        EOFError,
        OSError,
        ValueError,  # numpy's own "corrupt array data" reader errors
    ) as e:
        raise ForestIntegrityError(
            f"forest file {path!r} is truncated or corrupt "
            f"({type(e).__name__}: {e}) — delete the cache entry and retrain"
        ) from e
