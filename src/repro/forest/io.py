"""Forest serialisation (single-file ``.npz``).

Training deep forests dominates the wall-clock of the experiment pipeline, so
the harness caches trained forests on disk.  The format is one compressed
``.npz`` holding the concatenated node arrays plus per-tree offsets — the same
struct-of-arrays discipline used everywhere else, so loading is a handful of
slices with no per-node Python work.

Format history:

* v1 — node arrays + offsets.
* v2 — adds per-node ``n_samples``.
* v3 — adds per-array CRC32 checksums, verified on load.  A silently
  corrupted cache would poison every experiment that shares it, so damage
  (truncation, bit rot, interrupted writes) surfaces as a clear
  :class:`ForestIntegrityError` instead of a cryptic ``zipfile``/``KeyError``
  deep inside NumPy.  v1/v2 files still load (without checksum coverage).
"""

from __future__ import annotations

import os
import zipfile
import zlib
from typing import List

import numpy as np

from repro.forest.random_forest import RandomForestClassifier
from repro.forest.tree import DecisionTree
from repro.utils.validation import array_crc32

_FORMAT_VERSION = 3

#: Arrays covered by the v3 checksums, in stored order.
_CHECKSUMMED = (
    "tree_offsets",
    "feature",
    "threshold",
    "left_child",
    "right_child",
    "value",
    "depth",
    "n_samples",
)


class ForestIntegrityError(ValueError):
    """A cached forest file is truncated, corrupt, or fails its checksums."""


def save_forest(path: str, forest: RandomForestClassifier) -> None:
    """Serialise a fitted forest to ``path`` (``.npz`` appended if missing)."""
    forest._check_fitted()
    trees = forest.trees_
    offsets = np.zeros(len(trees) + 1, dtype=np.int64)
    for i, t in enumerate(trees):
        offsets[i + 1] = offsets[i] + t.n_nodes
    arrays = {
        "tree_offsets": offsets,
        "feature": np.concatenate([t.feature for t in trees]),
        "threshold": np.concatenate([t.threshold for t in trees]),
        "left_child": np.concatenate([t.left_child for t in trees]),
        "right_child": np.concatenate([t.right_child for t in trees]),
        "value": np.concatenate([t.value for t in trees]),
        "depth": np.concatenate([t.depth for t in trees]),
        "n_samples": np.concatenate(
            [
                t.n_samples
                if t.n_samples is not None
                else np.full(t.n_nodes, -1, dtype=np.int64)
                for t in trees
            ]
        ),
    }
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        n_classes=np.int64(forest.n_classes_),
        n_features=np.int64(forest.n_features_),
        array_checksums=np.asarray(
            [array_crc32(arrays[name]) for name in _CHECKSUMMED],
            dtype=np.uint32,
        ),
        **arrays,
    )


def _verify_checksums(data, path: str) -> None:
    """Compare each stored array against its v3 build-time CRC32."""
    stored = data["array_checksums"]
    if stored.shape[0] != len(_CHECKSUMMED):
        raise ForestIntegrityError(
            f"forest file {path!r}: checksum table has {stored.shape[0]} "
            f"entries, expected {len(_CHECKSUMMED)}"
        )
    bad = [
        name
        for name, crc in zip(_CHECKSUMMED, stored)
        if array_crc32(data[name]) != int(crc)
    ]
    if bad:
        raise ForestIntegrityError(
            f"forest file {path!r} failed checksum verification for "
            f"array(s): {', '.join(bad)} — the cache entry is corrupt; "
            "delete it and retrain"
        )


def _decode(data, path: str) -> RandomForestClassifier:
    version = int(data["version"])
    if version not in (1, 2, _FORMAT_VERSION):
        raise ForestIntegrityError(
            f"unsupported forest file version {version} "
            f"(expected <= {_FORMAT_VERSION})"
        )
    if version >= 3:
        _verify_checksums(data, path)
    offsets = data["tree_offsets"]
    n_classes = int(data["n_classes"])
    trees: List[DecisionTree] = []
    for i in range(len(offsets) - 1):
        lo, hi = int(offsets[i]), int(offsets[i + 1])
        n_samples = None
        if version >= 2:
            ns = data["n_samples"][lo:hi]
            if ns[0] >= 0:
                n_samples = ns
        trees.append(
            DecisionTree(
                feature=data["feature"][lo:hi],
                threshold=data["threshold"][lo:hi],
                left_child=data["left_child"][lo:hi],
                right_child=data["right_child"][lo:hi],
                value=data["value"][lo:hi],
                n_classes=n_classes,
                depth=data["depth"][lo:hi],
                n_samples=n_samples,
            )
        )
    return RandomForestClassifier.from_trees(trees, int(data["n_features"]))


def load_forest(path: str) -> RandomForestClassifier:
    """Load a forest previously written by :func:`save_forest`.

    Raises :class:`ForestIntegrityError` (a ``ValueError``) when the file is
    truncated, not a valid archive, missing arrays, or fails its v3
    checksums; a genuinely missing file still raises ``FileNotFoundError``.
    """
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    try:
        with np.load(path) as data:
            return _decode(data, path)
    except (ForestIntegrityError, FileNotFoundError):
        raise
    except (
        zipfile.BadZipFile,
        zlib.error,
        KeyError,
        EOFError,
        OSError,
        ValueError,  # numpy's own "corrupt array data" reader errors
    ) as e:
        raise ForestIntegrityError(
            f"forest file {path!r} is truncated or corrupt "
            f"({type(e).__name__}: {e}) — delete the cache entry and retrain"
        ) from e
