"""Feature importances and out-of-bag evaluation.

Standard random-forest facilities the training substrate should offer a
downstream user (scikit-learn parity): mean-decrease-in-impurity feature
importances computed from the stored trees, and out-of-bag accuracy, the
free validation estimate bootstrap sampling provides.  The OOB machinery
requires recording each tree's bootstrap sample, which
:class:`~repro.forest.random_forest.RandomForestClassifier` does when
``store_oob=True``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.forest.tree import LEAF, DecisionTree


def tree_feature_importance(
    tree: DecisionTree, n_features: int
) -> np.ndarray:
    """Per-feature importance of one tree (unnormalised MDI proxy).

    Without stored per-node impurities, weight each split by the expected
    query mass reaching it (``2^-depth``) — the same proxy the extensions
    module uses for clustering, and a faithful stand-in for
    mean-decrease-in-impurity rankings on balanced trees.
    """
    imp = np.zeros(n_features, dtype=np.float64)
    inner = tree.feature != LEAF
    feats = tree.feature[inner]
    if feats.size and feats.max() >= n_features:
        raise ValueError("tree uses features outside [0, n_features)")
    weights = np.power(0.5, tree.depth[inner].astype(np.float64))
    np.add.at(imp, feats, weights)
    return imp


def forest_feature_importances(
    trees: Sequence[DecisionTree], n_features: int
) -> np.ndarray:
    """Normalised feature importances over a forest (sums to 1)."""
    if not trees:
        raise ValueError("need at least one tree")
    total = np.zeros(n_features, dtype=np.float64)
    for t in trees:
        total += tree_feature_importance(t, n_features)
    s = total.sum()
    return total / s if s > 0 else total


def oob_votes(
    trees: Sequence[DecisionTree],
    bootstrap_indices: Sequence[np.ndarray],
    X: np.ndarray,
    n_classes: int,
) -> np.ndarray:
    """Out-of-bag vote counts: each tree votes only on rows it never saw.

    Returns ``int64[n_samples, n_classes]``; rows that were in every
    bootstrap sample have all-zero votes.
    """
    if len(trees) != len(bootstrap_indices):
        raise ValueError("one bootstrap index set per tree required")
    n = X.shape[0]
    votes = np.zeros((n, n_classes), dtype=np.int64)
    rows = np.arange(n, dtype=np.int64)
    for tree, idx in zip(trees, bootstrap_indices):
        in_bag = np.zeros(n, dtype=bool)
        in_bag[np.asarray(idx)] = True
        oob = ~in_bag
        if not np.any(oob):
            continue
        pred = tree.predict(X[oob])
        votes[rows[oob], pred] += 1
    return votes


def oob_score(
    trees: Sequence[DecisionTree],
    bootstrap_indices: Sequence[np.ndarray],
    X: np.ndarray,
    y: np.ndarray,
    n_classes: int,
) -> float:
    """Out-of-bag accuracy over samples with at least one OOB vote."""
    votes = oob_votes(trees, bootstrap_indices, X, n_classes)
    has_vote = votes.sum(axis=1) > 0
    if not np.any(has_vote):
        raise ValueError(
            "no out-of-bag samples — was the forest trained with bootstrap?"
        )
    pred = votes[has_vote].argmax(axis=1)
    return float(np.mean(pred == np.asarray(y)[has_vote]))
