"""nvprof-style reports for simulated kernel runs.

The paper explains its Fig. 7 speedups with profiler counters (Fig. 8).
:func:`profile_report` renders the same view for any
:class:`~repro.kernels.base.GPUKernelResult`: aggregate counters plus a
per-load-site breakdown showing where the transactions come from — the
fastest way to see *why* one variant beats another in this model.

The aggregate half is expressed over the unified metrics registry
(:mod:`repro.obs`): the result is ingested through the same bridges the
timeline exporter uses, so the profile, the Prometheus page and the run
manifest all read the exact same numbers.
"""

from __future__ import annotations

from typing import List

from repro.kernels.base import GPUKernelResult
from repro.utils.tables import format_table


def site_table(result: GPUKernelResult) -> str:
    """Per-load-site breakdown (one row per device array).

    Transaction shares are computed against the kernel's aggregate
    transaction count; when that count is zero (e.g. a fully shared-memory
    kernel, or an empty query set) the share column shows ``-`` instead of
    dividing by an artificial floor and printing a misleading percentage.
    """
    rows: List[list] = []
    total_txn = result.metrics.global_load_transactions
    for name, s in sorted(
        result.site_stats.items(),
        key=lambda kv: (-kv[1]["transactions"], kv[0]),
    ):
        if total_txn > 0:
            share = f"{s['transactions'] / total_txn:.1%}"
        else:
            share = "-"
        rows.append(
            [
                name,
                int(s["requests"]),
                int(s["transactions"]),
                share,
                int(s["cold_transactions"]),
                f"{s['footprint_bytes'] / 1024:.1f} KB",
                "L1" if s["l1_resident"] else f"{s['l1_hit_rate']:.0%} L1",
                s["issue_cost"],
            ]
        )
    return format_table(
        [
            "site",
            "requests",
            "transactions",
            "txn share",
            "cold (DRAM)",
            "footprint",
            "cache",
            "issue cost",
        ],
        rows,
        title="Per-site global loads",
    )


def profile_report(result: GPUKernelResult, name: str = "kernel") -> str:
    """Full profile: aggregate counters, timing breakdown, per-site table."""
    from repro.obs.bridges import record_kernel_metrics, record_kernel_timing
    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    record_kernel_metrics(registry, result.metrics, kernel=name)
    record_kernel_timing(registry, result.timing, kernel=name)

    def val(metric: str) -> float:
        return registry.get(metric).value(kernel=name)

    agg = format_table(
        ["counter", "value"],
        [
            ["simulated seconds", f"{val('gpu.timing.seconds'):.6e}"],
            ["bound by", result.timing.bound_by],
            ["global load requests",
             int(val("gpu.kernel.global_load_requests"))],
            ["global load transactions",
             int(val("gpu.kernel.global_load_transactions"))],
            ["  cold (DRAM)", int(val("gpu.kernel.dram_transactions"))],
            ["  served by L1", int(val("gpu.kernel.l1_transactions"))],
            ["issue-weighted transactions",
             f"{val('gpu.kernel.issue_weighted_transactions'):.0f}"],
            ["shared load requests",
             int(val("gpu.kernel.shared_load_requests"))],
            ["bytes staged to shared",
             int(val("gpu.kernel.bytes_staged_shared"))],
            ["branch efficiency",
             f"{val('gpu.kernel.branch_efficiency'):.3f}"],
            ["warp efficiency", f"{val('gpu.kernel.warp_efficiency'):.3f}"],
            ["warp instructions",
             int(val("gpu.kernel.warp_instructions"))],
            ["txn roof (s)", f"{val('gpu.timing.txn_s'):.3e}"],
            ["dram roof (s)", f"{val('gpu.timing.dram_s'):.3e}"],
            ["l2 roof (s)", f"{val('gpu.timing.l2_s'):.3e}"],
            ["compute roof (s)", f"{val('gpu.timing.compute_s'):.3e}"],
            ["shared roof (s)", f"{val('gpu.timing.shared_s'):.3e}"],
        ],
        title=f"Profile: {name}",
    )
    if result.site_stats:
        return agg + "\n\n" + site_table(result)
    return agg
