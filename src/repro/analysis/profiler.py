"""nvprof-style reports for simulated kernel runs.

The paper explains its Fig. 7 speedups with profiler counters (Fig. 8).
:func:`profile_report` renders the same view for any
:class:`~repro.kernels.base.GPUKernelResult`: aggregate counters plus a
per-load-site breakdown showing where the transactions come from — the
fastest way to see *why* one variant beats another in this model.
"""

from __future__ import annotations

from typing import List

from repro.kernels.base import GPUKernelResult
from repro.utils.tables import format_table


def site_table(result: GPUKernelResult) -> str:
    """Per-load-site breakdown (one row per device array)."""
    rows: List[list] = []
    total_txn = max(1, result.metrics.global_load_transactions)
    for name, s in sorted(
        result.site_stats.items(),
        key=lambda kv: kv[1]["transactions"],
        reverse=True,
    ):
        rows.append(
            [
                name,
                int(s["requests"]),
                int(s["transactions"]),
                f"{s['transactions'] / total_txn:.1%}",
                int(s["cold_transactions"]),
                f"{s['footprint_bytes'] / 1024:.1f} KB",
                "L1" if s["l1_resident"] else f"{s['l1_hit_rate']:.0%} L1",
                s["issue_cost"],
            ]
        )
    return format_table(
        [
            "site",
            "requests",
            "transactions",
            "txn share",
            "cold (DRAM)",
            "footprint",
            "cache",
            "issue cost",
        ],
        rows,
        title="Per-site global loads",
    )


def profile_report(result: GPUKernelResult, name: str = "kernel") -> str:
    """Full profile: aggregate counters, timing breakdown, per-site table."""
    m = result.metrics
    t = result.timing
    agg = format_table(
        ["counter", "value"],
        [
            ["simulated seconds", f"{t.seconds:.6e}"],
            ["bound by", t.bound_by],
            ["global load requests", m.global_load_requests],
            ["global load transactions", m.global_load_transactions],
            ["  cold (DRAM)", m.dram_transactions],
            ["  served by L1", m.l1_transactions],
            ["issue-weighted transactions", f"{m.issue_weighted_transactions:.0f}"],
            ["shared load requests", m.shared_load_requests],
            ["bytes staged to shared", m.bytes_staged_shared],
            ["branch efficiency", f"{m.branch_efficiency:.3f}"],
            ["warp efficiency", f"{m.warp_efficiency:.3f}"],
            ["warp instructions", m.warp_instructions],
            ["txn roof (s)", f"{t.txn_s:.3e}"],
            ["dram roof (s)", f"{t.dram_s:.3e}"],
            ["l2 roof (s)", f"{t.l2_s:.3e}"],
            ["compute roof (s)", f"{t.compute_s:.3e}"],
            ["shared roof (s)", f"{t.shared_s:.3e}"],
        ],
        title=f"Profile: {name}",
    )
    if result.site_stats:
        return agg + "\n\n" + site_table(result)
    return agg
