"""Post-run analysis tools: profiler reports, roofline analysis, sweeps.

These sit on top of :mod:`repro.core` and the kernel result objects:

* :mod:`profiler` — an nvprof-style per-load-site report for one simulated
  kernel run (the view the paper's Fig. 8 is built from).
* :mod:`roofline` — decomposes a run's time into the model's roofs
  (transaction issue, DRAM bytes, L2 bytes, compute, shared) and names the
  binding one.
* :mod:`sweeps` — a small declarative parameter-sweep helper used by the
  examples and handy for custom studies.
"""

from repro.analysis.profiler import profile_report, site_table
from repro.analysis.roofline import roofline_report, RooflinePoint
from repro.analysis.sweeps import sweep

__all__ = [
    "profile_report",
    "site_table",
    "roofline_report",
    "RooflinePoint",
    "sweep",
]
