"""Declarative parameter sweeps over the classification pipeline.

A tiny helper for studies the experiment modules don't cover: give it a
fitted classifier, query batch and a grid of :class:`RunConfig` axes and it
returns tidy rows.  Used by the examples; exposed because users reproducing
a paper usually want *one more* sweep than the authors ran.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.classifier import HierarchicalForestClassifier
from repro.core.config import KernelVariant, Platform, RunConfig
from repro.fpgasim.replication import Replication
from repro.layout.hierarchical import LayoutParams


def sweep(
    clf: HierarchicalForestClassifier,
    X: np.ndarray,
    platforms: Sequence = (Platform.GPU,),
    variants: Sequence = (KernelVariant.CSR, KernelVariant.HYBRID),
    subtree_depths: Sequence[int] = (6,),
    root_subtree_depths: Sequence[Optional[int]] = (None,),
    replications: Sequence[Replication] = (Replication(),),
    y_true: Optional[np.ndarray] = None,
) -> List[Dict]:
    """Run the cartesian product of the given axes; returns tidy rows.

    Invalid combinations (cuML on FPGA) are skipped silently; layout axes
    are ignored for layout-free variants (CSR, cuML) so those variants run
    once per platform/replication rather than once per SD.
    """
    rows: List[Dict] = []
    seen = set()
    for platform, variant, sd, rsd, repl in itertools.product(
        platforms, variants, subtree_depths, root_subtree_depths, replications
    ):
        platform = Platform(platform)
        variant = KernelVariant(variant)
        if platform is Platform.FPGA and variant is KernelVariant.CUML:
            continue
        if variant in (KernelVariant.CSR, KernelVariant.CUML):
            key = (platform, variant, None, None, repl)
            layout = LayoutParams()
        else:
            key = (platform, variant, sd, rsd, repl)
            layout = LayoutParams(sd, rsd)
        if key in seen:
            continue
        seen.add(key)
        cfg = RunConfig(
            platform=platform, variant=variant, layout=layout, replication=repl
        )
        res = clf.classify(X, cfg, y_true=y_true)
        rows.append(
            {
                "platform": platform.value,
                "variant": variant.value,
                "sd": None if key[2] is None else sd,
                "rsd": None if key[2] is None else layout.rsd,
                "replication": repl.label,
                "seconds": res.seconds,
                "accuracy": res.accuracy,
                "label": cfg.label,
                "details": res.details,
            }
        )
    return rows
