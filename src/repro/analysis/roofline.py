"""Roofline decomposition of simulated kernel runs.

The timing model takes the maximum of five subsystem times (transaction
issue, DRAM bytes, L2 bytes, compute issue, shared bandwidth).  This module
turns a set of runs into a comparative roofline report: which roof binds
each variant and how much headroom the others have — useful for reasoning
about what a further optimisation could buy, exactly the style of argument
the paper makes when moving from CSR to independent to hybrid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.kernels.base import GPUKernelResult
from repro.utils.tables import format_table


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position against the model's roofs."""

    name: str
    seconds: float
    bound_by: str
    #: roof name -> (seconds, utilisation of the binding roof).
    roofs: Dict[str, float]

    @property
    def headroom(self) -> float:
        """Binding-roof time over second-highest roof — how 'cliffy' the
        kernel is (1.0 = two roofs tied; large = one clear bottleneck)."""
        times = sorted(self.roofs.values(), reverse=True)
        if len(times) < 2 or times[1] == 0:
            return float("inf")
        return times[0] / times[1]


def roofline_point(name: str, result: GPUKernelResult) -> RooflinePoint:
    """Extract the roofline position of one run."""
    t = result.timing
    return RooflinePoint(
        name=name,
        seconds=t.seconds,
        bound_by=t.bound_by,
        roofs={
            "txn": t.txn_s,
            "dram": t.dram_s,
            "l2": t.l2_s,
            "compute": t.compute_s,
            "shared": t.shared_s,
        },
    )


def roofline_report(
    runs: Sequence[Tuple[str, GPUKernelResult]],
) -> str:
    """Comparative roofline table over several named runs."""
    rows: List[list] = []
    for name, result in runs:
        p = roofline_point(name, result)
        rows.append(
            [
                name,
                p.seconds,
                p.bound_by,
                p.roofs["txn"],
                p.roofs["dram"],
                p.roofs["l2"],
                p.roofs["compute"],
                f"{p.headroom:.2f}x"
                if p.headroom != float("inf")
                else "-",
            ]
        )
    return format_table(
        [
            "kernel",
            "seconds",
            "bound by",
            "txn roof",
            "dram roof",
            "l2 roof",
            "compute roof",
            "headroom",
        ],
        rows,
        title="Roofline decomposition",
        float_digits=6,
    )
