"""The paper's reported numbers, as data.

Every value the paper prints — the complete Fig. 5 accuracy grids, Table 2's
RSD sweep, Table 3's FPGA comparison, and the prose-level speedup bands — is
encoded here so experiments, tests and reports compare against a single
authoritative transcription instead of scattered hand-copied constants.
"""

from repro.paper.compare import fig5_shape_scores, table3_ordering_agreement
from repro.paper.reference import (
    FIG5_ACCURACY,
    FIG7_BANDS,
    TABLE2,
    TABLE3,
    fig5_value,
    table2_row,
)

__all__ = [
    "fig5_shape_scores",
    "table3_ordering_agreement",
    "FIG5_ACCURACY",
    "FIG7_BANDS",
    "TABLE2",
    "TABLE3",
    "fig5_value",
    "table2_row",
]
