"""Quantitative shape comparison between measured results and the paper.

Because the reproduction runs at reduced scale, absolute values differ from
the paper by design; these helpers quantify how well the *shapes* match:

* :func:`fig5_shape_scores` — per dataset, the Spearman rank correlation of
  accuracy against tree depth (at the largest ensemble), for both the paper
  grid and the measured rows.  Both should be strongly positive (accuracy
  climbs with depth) with the same dataset ordering of plateaus.
* :func:`table3_ordering_agreement` — fraction of pairwise speedup
  orderings in Table 3 that the measured rows reproduce (1.0 = every "A
  faster than B" relation preserved).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Sequence

import numpy as np
from scipy.stats import spearmanr

from repro.paper.reference import FIG5_ACCURACY, FIG5_DEPTHS, FIG5_TREES, TABLE3


def _safe_spearman(values: Sequence[float]) -> float:
    """Spearman rho of ``values`` against their index; 0.0 when degenerate
    (fewer than two points or a constant curve)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size < 2 or np.all(arr == arr[0]):
        return 0.0
    return float(
        spearmanr(np.arange(arr.size, dtype=np.int64), arr).statistic
    )


def _depth_curve(rows: Sequence[dict], dataset: str) -> List[float]:
    """Measured accuracy vs depth at the largest tree count."""
    sub = [r for r in rows if r["dataset"] == dataset]
    if not sub:
        raise ValueError(f"no measured rows for dataset {dataset!r}")
    top = max(r["n_trees"] for r in sub)
    curve = sorted(
        ((r["depth"], r["accuracy"]) for r in sub if r["n_trees"] == top)
    )
    return [a for _, a in curve]


def fig5_shape_scores(rows: Sequence[dict]) -> Dict[str, Dict[str, float]]:
    """Spearman(depth, accuracy) for paper and measured Fig. 5 curves."""
    out: Dict[str, Dict[str, float]] = {}
    for name in sorted({r["dataset"] for r in rows}):
        measured = _depth_curve(rows, name)
        paper = [
            FIG5_ACCURACY[name][i][FIG5_TREES.index(max(FIG5_TREES))]
            for i in range(len(FIG5_DEPTHS))
        ]
        m_rho = _safe_spearman(measured)
        p_rho = _safe_spearman(paper)
        out[name] = {
            "measured_spearman": float(m_rho),
            "paper_spearman": float(p_rho),
            "measured_climb": float(measured[-1] - measured[0]),
            "paper_climb": float((paper[-1] - paper[0]) / 100.0),
        }
    return out


def table3_ordering_agreement(measured: Dict[str, float]) -> float:
    """Fraction of Table 3 pairwise orderings the measured speedups keep.

    ``measured`` maps version name -> measured speedup vs CSR; versions not
    present in the paper's table are ignored.
    """
    common = [v for v in TABLE3 if v in measured]
    if len(common) < 2:
        raise ValueError("need at least two overlapping versions")
    agree = total = 0
    for a, b in combinations(common, 2):
        paper_order = TABLE3[a][2] > TABLE3[b][2]
        ours_order = measured[a] > measured[b]
        agree += paper_order == ours_order
        total += 1
    return agree / total
