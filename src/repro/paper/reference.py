"""Transcription of the paper's reported results (Shah et al., ICPP 2022).

Sources, by section of the paper:

* :data:`FIG5_ACCURACY` — the three accuracy heat-maps of Fig. 5
  (maximum tree depth x number of trees, percent correct).
* :data:`TABLE2` — Table 2: root-subtree-depth sweep; ``G8/G10/G12`` are
  GPU hybrid speedups over CSR, ``F8/F10/F12`` FPGA independent seconds.
* :data:`TABLE3` — Table 3: FPGA variants on the synthetic workload
  (seconds, stall fraction, speedup vs CSR, frequency MHz, II).
* :data:`FIG7_BANDS` — the prose-level GPU speedup bands of §4.3.
* :data:`CSR_RUNTIME_RANGES` — §4.3's CSR absolute runtime ranges.

Values are transcribed verbatim; helpers expose them in convenient shapes.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Fig. 5 grid axes.
FIG5_DEPTHS = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50)
FIG5_TREES = (10, 25, 50, 75, 100, 125, 150)

#: Fig. 5 accuracy heat-maps, percent (rows = FIG5_DEPTHS, cols = FIG5_TREES).
FIG5_ACCURACY: Dict[str, Tuple[Tuple[float, ...], ...]] = {
    "covertype": (
        (71.4, 71.2, 70.7, 70.6, 71.4, 72.3, 72.4),
        (78.5, 79.6, 80.0, 80.1, 80.1, 80.4, 80.7),
        (81.7, 82.8, 83.0, 83.1, 83.2, 83.3, 83.3),
        (84.4, 85.5, 85.8, 85.9, 86.0, 86.0, 86.0),
        (86.1, 87.3, 87.6, 87.8, 87.8, 87.8, 87.8),
        (87.0, 88.2, 88.4, 88.7, 88.7, 88.6, 88.6),
        (87.2, 88.4, 88.6, 88.9, 88.8, 88.8, 88.8),
        (87.2, 88.5, 88.7, 88.9, 88.9, 88.8, 88.8),
        (87.2, 88.5, 88.7, 88.9, 88.9, 88.8, 88.8),
        (87.2, 88.5, 88.7, 88.9, 88.9, 88.8, 88.8),
    ),
    "susy": (
        (77.3, 77.7, 77.8, 77.8, 77.8, 77.7, 77.7),
        (79.3, 79.4, 79.4, 79.5, 79.4, 79.4, 79.4),
        (79.7, 79.9, 80.0, 80.0, 80.0, 80.0, 80.0),
        (79.6, 80.0, 80.1, 80.2, 80.2, 80.2, 80.2),
        (79.2, 79.8, 80.0, 80.1, 80.2, 80.2, 80.2),
        (78.7, 79.6, 79.9, 80.0, 80.1, 80.1, 80.1),
        (78.5, 79.5, 79.9, 80.0, 80.0, 80.1, 80.1),
        (78.5, 79.5, 79.8, 79.9, 80.0, 80.1, 80.1),
        (78.4, 79.5, 79.8, 79.9, 80.0, 80.1, 80.1),
        (78.4, 79.5, 79.8, 79.9, 80.0, 80.1, 80.1),
    ),
    "higgs": (
        (67.0, 67.7, 67.8, 68.1, 67.9, 68.0, 68.3),
        (70.5, 70.9, 71.0, 71.0, 71.1, 71.1, 71.1),
        (72.0, 72.6, 72.7, 72.8, 72.8, 72.7, 72.8),
        (71.8, 72.9, 73.3, 73.5, 73.5, 73.6, 73.6),
        (71.1, 72.7, 73.4, 73.6, 73.7, 73.8, 73.9),
        (70.3, 72.6, 73.3, 73.6, 73.8, 73.9, 73.9),
        (70.1, 72.5, 73.2, 73.6, 73.8, 73.9, 74.0),
        (70.2, 72.5, 73.3, 73.7, 73.8, 73.9, 74.0),
        (70.2, 72.4, 73.3, 73.6, 73.7, 73.9, 73.9),
        (70.1, 72.5, 73.3, 73.6, 73.8, 73.9, 73.9),
    ),
}


def fig5_value(dataset: str, depth: int, n_trees: int) -> float:
    """Fig. 5 accuracy (fraction in [0, 1]) for one grid cell."""
    grid = FIG5_ACCURACY[dataset]
    return grid[FIG5_DEPTHS.index(depth)][FIG5_TREES.index(n_trees)] / 100.0


#: Table 2: (dataset, tree depth) -> dict of G8/G10/G12 (speedup) and
#: F8/F10/F12 (seconds).
TABLE2: Dict[Tuple[str, int], Dict[str, float]] = {
    ("covertype", 30): dict(G8=5.3, G10=5.4, G12=5.5, F8=6.2, F10=6.2, F12=6.0),
    ("covertype", 35): dict(G8=5.4, G10=5.5, G12=5.8, F8=6.5, F10=6.3, F12=6.1),
    ("covertype", 40): dict(G8=5.2, G10=5.4, G12=5.6, F8=6.5, F10=6.3, F12=6.2),
    ("susy", 15): dict(G8=6.4, G10=7.2, G12=8.1, F8=22.5, F10=22.7, F12=22.7),
    ("susy", 20): dict(G8=9.3, G10=9.4, G12=9.1, F8=30.0, F10=29.9, F12=29.6),
    ("susy", 25): dict(G8=6.5, G10=7.9, G12=8.3, F8=35.3, F10=33.4, F12=33.1),
    ("higgs", 25): dict(G8=6.0, G10=6.3, G12=6.5, F8=32.3, F10=31.0, F12=30.7),
    ("higgs", 30): dict(G8=5.9, G10=6.5, G12=7.1, F8=33.8, F10=32.5, F12=31.6),
    ("higgs", 35): dict(G8=6.9, G10=6.9, G12=7.0, F8=32.8, F10=32.3, F12=32.3),
}


def table2_row(dataset: str, depth: int) -> Dict[str, float]:
    """One Table 2 row; KeyError for configurations the paper omits."""
    return dict(TABLE2[(dataset, depth)])


#: Table 3: version -> (seconds, stall fraction or None, speedup vs CSR,
#: frequency MHz, II string).
TABLE3: Dict[str, Tuple[float, float, float, float, str]] = {
    "csr": (162.47, 0.1097, 1.00, 300, "292"),
    "independent": (54.59, 0.1076, 2.98, 300, "76"),
    "collaborative": (1957.80, 0.9068, 0.08, 300, "3"),
    "hybrid": (29.76, 0.2509, 5.46, 300, "3/76"),
    "independent-4S12C": (1.48, 0.3039, 109.48, 300, "76"),
    "hybrid-4S12C": (2.44, 0.7980, 66.58, 300, "3/76"),
    "hybrid-split-4S10C": (2.23, None, 72.92, 245, "3/76"),
}

#: §4.3 prose: GPU speedup bands over CSR (min, max).
FIG7_BANDS: Dict[str, Tuple[float, float]] = {
    "independent": (2.5, 4.0),
    "hybrid": (4.5, 9.0),
    "cuml": (4.0, 5.0),
}

#: §4.3: CSR runtime ranges at paper scale, seconds (min, max).
CSR_RUNTIME_RANGES: Dict[str, Tuple[float, float]] = {
    "covertype": (0.4, 0.6),
    "susy": (1.4, 3.2),
    "higgs": (4.3, 5.2),
}

#: §4.1: the depth bands selected for the timing experiments.
DEPTH_BANDS: Dict[str, Tuple[int, ...]] = {
    "covertype": (30, 35, 40),
    "susy": (15, 20, 25),
    "higgs": (25, 30, 35),
}
