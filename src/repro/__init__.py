"""repro — reproduction of "Accelerating Random Forest Classification on
GPU and FPGA" (Shah et al., ICPP 2022).

The package implements the paper's hierarchical decision-tree memory layout,
its four traversal code variants on trace-driven GPU and FPGA performance
models, a from-scratch random-forest training substrate, calibrated synthetic
stand-ins for the paper's UCI workloads, and one experiment module per table
and figure in the paper's evaluation.  See README.md for a tour and
DESIGN.md for the system inventory.

Quick start::

    from repro import HierarchicalForestClassifier, RunConfig, load_dataset

    ds = load_dataset("susy")
    clf = HierarchicalForestClassifier(n_estimators=20, max_depth=15, seed=0)
    clf.fit(ds.X_train, ds.y_train)
    res = clf.classify(ds.X_test, RunConfig(variant="hybrid"), y_true=ds.y_test)
    print(f"{res.seconds * 1e3:.2f} simulated ms, accuracy {res.accuracy:.3f}")
"""

from repro.core import (
    ComparisonTable,
    HierarchicalForestClassifier,
    KernelVariant,
    Platform,
    RunConfig,
    RunResult,
)
from repro.datasets import load_dataset, make_forest_classification, make_synthetic_forest
from repro.forest import (
    DecisionTree,
    RandomForestClassifier,
    load_forest,
    save_forest,
    truncate_forest,
)
from repro.layout import (
    CSRForest,
    HierarchicalForest,
    LayoutParams,
    verify_layouts,
)
from repro.reliability import (
    FaultPlan,
    ReliabilityReport,
    ResilientClassifier,
)
from repro.runtime import (
    ExecutionPlan,
    PlanError,
    Planner,
    RuntimeSession,
    compile_plan,
)

__version__ = "1.0.0"

__all__ = [
    "HierarchicalForestClassifier",
    "RunConfig",
    "RunResult",
    "ComparisonTable",
    "KernelVariant",
    "Platform",
    "load_dataset",
    "make_forest_classification",
    "make_synthetic_forest",
    "DecisionTree",
    "RandomForestClassifier",
    "save_forest",
    "load_forest",
    "CSRForest",
    "HierarchicalForest",
    "LayoutParams",
    "truncate_forest",
    "verify_layouts",
    "FaultPlan",
    "ReliabilityReport",
    "ResilientClassifier",
    "ExecutionPlan",
    "PlanError",
    "Planner",
    "RuntimeSession",
    "compile_plan",
    "__version__",
]
