"""GPU collaborative kernel (paper §3.2).

Subtrees are batch-loaded into shared memory and *every* query is pushed
through *every* subtree, with a presence check guarding actual work.  The
paper keeps this variant for analysis: it is consistently 10-20x slower than
the independent variant on GPU because

* each thread block stages every subtree of every tree into its own shared
  memory (staging traffic proportional to ``n_blocks``),
* queries burn presence-check cycles on subtrees they never visit
  (starvation), which grows with tree depth since deeper subtrees hold
  exponentially fewer queries, and
* the per-subtree block barrier plus the full-48 KB shared-memory batches
  (one resident block per SM) make each block's subtree sequence a serial
  critical path that other blocks cannot hide.

All three effects fall out of the cost accounting here.
"""

from __future__ import annotations

import numpy as np

from repro.forest.tree import EMPTY, LEAF
from repro.gpusim.engine import WarpGrid
from repro.gpusim.memory import CoalescingTracker
from repro.gpusim.timing import KernelTiming
from repro.kernels.base import AddressSpace, GPUKernel
from repro.layout.hierarchical import HierarchicalForest


class GPUCollaborativeKernel(GPUKernel):
    """Shared-memory subtree batches; all queries visit all subtrees."""

    name = "gpu-collaborative"
    INSTR_PER_STEP = 10
    #: Presence-check instructions per warp per subtree.
    INSTR_PRESENCE = 2
    INSTR_PER_STAGE_ITER = 4
    #: Bytes of shared memory per stored slot (feature_id + value).
    BYTES_PER_SLOT = 8
    #: Block-serial critical-path costs: every subtree ends in a block-wide
    #: __syncthreads (SYNC_CYCLES); every traversal level inside a subtree
    #: is a lock-step shared-load + compare round (LEVEL_CYCLES); each
    #: staging iteration moves one element per thread (STAGE_CYCLES).  The
    #: kernel's 48 KB shared-memory batches limit residency to one block
    #: per SM, so this path cannot be hidden by other blocks — the
    #: structural reason the paper finds this variant 10-20x slower.
    SYNC_CYCLES = 40
    LEVEL_CYCLES = 30
    STAGE_CYCLES = 8

    def _run(self, layout: HierarchicalForest, X, grid: WarpGrid, metrics, votes):
        if not isinstance(layout, HierarchicalForest):
            raise TypeError("GPUCollaborativeKernel expects a HierarchicalForest")
        self._serial_cycles = 0.0
        self._max_batch_bytes = 0
        n, n_features = X.shape
        space = AddressSpace()
        space.alloc("feature_id", layout.total_slots, 4)
        space.alloc("value", layout.total_slots, 4)
        space.alloc("connection_offset", layout.n_subtrees + 1, 8)
        space.alloc(
            "subtree_connection", max(1, layout.subtree_connection.shape[0]), 4
        )
        space.alloc("X", n * n_features, 4)
        tr_conn_off = CoalescingTracker("connection_offset", metrics, element_bytes=8)
        tr_conn = CoalescingTracker("subtree_connection", metrics)
        tr_x = CoalescingTracker("X", metrics, l1_resident=True)
        self._register_sites([tr_conn_off, tr_conn, tr_x])
        rows = np.arange(n, dtype=np.int64)

        capacity_slots = self.spec.shared_mem_per_sm // self.BYTES_PER_SLOT
        roots = layout.tree_root_subtree
        for t in range(layout.n_trees):
            first = int(roots[t])
            last = (
                int(roots[t + 1]) if t + 1 < layout.n_trees else layout.n_subtrees
            )
            st = np.full(n, first, dtype=np.int64)
            local = np.zeros(n, dtype=np.int64)
            out = np.full(n, -1, dtype=np.int64)
            active = np.ones(n, dtype=bool)

            batch_start = first
            while batch_start < last:
                batch_end, batch_slots = self._plan_batch(
                    layout, batch_start, last, capacity_slots
                )
                self._stage_batch(grid, metrics, batch_slots)
                for s in range(batch_start, batch_end):
                    present = active & (st == s)
                    # Every warp evaluates the presence check for every
                    # subtree in the batch — the starvation cost — and the
                    # block barrier after each subtree is serial.
                    metrics.warp_instructions += self.INSTR_PRESENCE * grid.n_warps
                    self._serial_cycles += self.SYNC_CYCLES
                    grid.record_branch(metrics, active, present)
                    if not np.any(present):
                        continue
                    self._process_subtree(
                        layout, X, s, present, st, local, out, active,
                        grid, metrics, space, tr_x, tr_conn_off, tr_conn, rows,
                        n_features,
                    )
                batch_start = batch_end
            self._accumulate_votes(votes, out)

    # ------------------------------------------------------------------
    def _plan_batch(self, layout, start, last, capacity_slots):
        """Greedy consecutive-subtree packing under the shared-mem limit."""
        end = start
        slots = 0
        while end < last:
            size = layout.subtree_size(end)
            if slots + size > capacity_slots and end > start:
                break
            slots += size
            end += 1
            if slots >= capacity_slots:
                break
        return end, slots

    def _stage_batch(self, grid, metrics, batch_slots):
        """Cooperative staging of one subtree batch by every block."""
        txn_bytes = self.spec.transaction_bytes
        n_blocks = grid.n_blocks
        for _ in ("feature_id", "value"):
            region_txns = -(-batch_slots * 4 // txn_bytes)
            requests = -(-batch_slots // self.spec.warp_size)
            metrics.global_load_requests += requests * n_blocks
            metrics.global_load_transactions += region_txns * n_blocks
            metrics.dram_transactions += region_txns
            metrics.issue_weighted_transactions += region_txns * n_blocks
            metrics.footprint_bytes += region_txns * txn_bytes
        metrics.bytes_staged_shared += batch_slots * self.BYTES_PER_SLOT * n_blocks
        self._max_batch_bytes = max(
            self._max_batch_bytes, batch_slots * self.BYTES_PER_SLOT
        )
        stage_iters = -(-batch_slots // self.spec.threads_per_block)
        metrics.warp_instructions += (
            self.INSTR_PER_STAGE_ITER * stage_iters * grid.n_warps
        )
        self._serial_cycles += self.STAGE_CYCLES * stage_iters
        # Barrier between the cooperative batch load and the presence-check
        # traversal reads of the staged subtrees.
        grid.record_sync(metrics)
        self._serial_cycles += self.SYNC_CYCLES

    def _process_subtree(
        self, layout, X, s, present, st, local, out, active,
        grid, metrics, space, tr_x, tr_conn_off, tr_conn, rows, n_features,
    ):
        """Lock-step traversal of subtree ``s`` for its present queries."""
        n = X.shape[0]
        base = int(layout.subtree_node_offset[s])
        sd = int(layout.subtree_depth[s])
        frontier_start = (1 << (sd - 1)) - 1
        walking = present.copy()
        while np.any(walking):
            self._serial_cycles += self.LEVEL_CYCLES
            # Stale lanes (parked in other subtrees) must not index out of
            # this subtree's slot range.
            g = base + np.where(walking, local, 0)
            metrics.shared_load_requests += 2 * grid.active_warps(walking)
            feats = np.where(walking, layout.feature_id[g], EMPTY)
            is_leaf = walking & (feats == LEAF)
            inner = walking & ~is_leaf
            if np.any(is_leaf):
                out[is_leaf] = layout.value[g[is_leaf]].astype(np.int64)
                active[is_leaf] = False
            go_right = np.zeros(n, dtype=bool)
            if np.any(inner):
                f_safe = np.where(inner, feats, 0).astype(np.int64)
                tr_x.record(
                    space.addr("X", rows * np.int64(n_features) + f_safe), inner
                )
                gi = g[inner]
                go_right[inner] = X[rows[inner], feats[inner]] >= layout.value[gi]
            crossing = inner & (local >= frontier_start)
            stay = inner & ~crossing
            if np.any(crossing):
                rank = local[crossing] - frontier_start
                cidx = np.zeros(n, dtype=np.int64)
                cidx[crossing] = (
                    layout.connection_offset[s] + 2 * rank + go_right[crossing]
                )
                tr_conn_off.record(
                    space.addr(
                        "connection_offset", np.full(n, s, dtype=np.int64)
                    ),
                    crossing,
                )
                tr_conn.record(space.addr("subtree_connection", cidx), crossing)
                st[crossing] = layout.subtree_connection[
                    cidx[crossing]
                ].astype(np.int64)
                local[crossing] = 0
            local[stay] = 2 * local[stay] + 1 + go_right[stay]
            # Block-wide synchronisation: every warp of a block with any
            # walking lane is held at the barrier for the whole level — the
            # paper's starvation effect ("cannot advance until all threads
            # in the block have completed the tree").
            grid.record_blocked_step(metrics, walking, self.INSTR_PER_STEP)
            grid.record_loop_branch(metrics, walking, stay)
            walking = stay

    def _finalize_timing(self, timing, grid, metrics):
        """Apply the block-serial critical-path floor: the shared-memory
        batches cap residency at 1-2 blocks per SM, so each block's serial
        subtree sequence is barely hidden by other blocks."""
        from repro.gpusim.occupancy import occupancy

        occ = occupancy(self.spec, shared_bytes_per_block=self._max_batch_bytes)
        waves = occ.waves(grid.n_blocks, self.spec)
        serial_s = waves * self._serial_cycles / (self.spec.clock_ghz * 1e9)
        if serial_s <= timing.seconds:
            return timing
        return KernelTiming(
            seconds=serial_s + timing.overhead_s,
            compute_s=timing.compute_s,
            dram_s=timing.dram_s,
            l2_s=timing.l2_s,
            txn_s=timing.txn_s,
            shared_s=timing.shared_s,
            overhead_s=timing.overhead_s,
            bound_by="block-serial",
        )
