"""FPGA independent kernel (paper Table 3 "Independent", §3.2.2).

Query features are staged into BRAM (the optimisation the paper credits with
reducing the II from 147 to 76 cycles); the remaining loop-carried external
load is the node-attribute fetch, so ``II = 72 + 2 + 2 = 76``.  Work items
are node visits; subtree crossings add two extra random external accesses
(connection arrays).  This is the paper's most *scalable* variant under CU
replication because its only external traffic is one small random access per
item.
"""

from __future__ import annotations

from repro.fpgasim.pipeline import derive_ii
from repro.fpgasim.replication import Replication
from repro.kernels.fpga_base import FPGAKernel
from repro.kernels.traversal_stats import traverse_tree_stats
from repro.layout.hierarchical import HierarchicalForest


class FPGAIndependentKernel(FPGAKernel):
    """Hierarchical layout, per-query sequential traversal, pipelined."""

    name = "fpga-independent"
    #: node attributes (ext) + query feature (BRAM) + compare + arith = 76.
    II_CHAIN = ("ext_load", "bram_load", "compare", "arith")
    #: Extra random accesses per subtree crossing (connection offset + id).
    CROSS_ACCESSES = 2.0

    def _run(self, layout: HierarchicalForest, X, replication: Replication, votes):
        if not isinstance(layout, HierarchicalForest):
            raise TypeError("FPGAIndependentKernel expects a HierarchicalForest")
        total_visits = 0
        total_crossings = 0
        for t in range(layout.n_trees):
            stats = traverse_tree_stats(layout, X, t)
            total_visits += stats.total_visits
            total_crossings += stats.total_crossings
            self._accumulate_votes(votes, stats.labels)
        ii = derive_ii(self.II_CHAIN, self.spec)
        rand_per_item = 1.0
        if total_visits:
            rand_per_item += self.CROSS_ACCESSES * total_crossings / total_visits
        return self.timer.time(
            work_items=total_visits,
            ii=ii,
            replication=replication,
            random_accesses_per_item=rand_per_item,
            launches=layout.n_trees,
        )
