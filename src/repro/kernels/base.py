"""Common infrastructure for the simulated GPU kernels.

:class:`AddressSpace` assigns each device array a disjoint, 128-byte-aligned
byte range so kernels can turn (array, index) pairs into global addresses —
the coalescing model operates on those addresses exactly as the hardware
would.  :class:`GPUKernel` provides the run loop shared by all variants:
majority-vote accumulation across trees, metrics/timing assembly, and the
correctness contract (``run`` returns real predictions).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional

import numpy as np

from repro.gpusim.device import GPUSpec, TITAN_XP
from repro.gpusim.engine import WarpGrid
from repro.gpusim.memory import CoalescingTracker
from repro.gpusim.metrics import KernelMetrics
from repro.gpusim.timing import KernelTiming, TimingModel
from repro.utils.validation import check_array_2d


class AddressSpace:
    """Sequential 128-byte-aligned allocator of device byte ranges."""

    def __init__(self, alignment: int = 128):
        self.alignment = alignment
        self._cursor = 0
        self._regions: Dict[str, tuple] = {}

    def alloc(self, name: str, n_elements: int, element_bytes: int) -> int:
        """Reserve a region; returns its base byte address."""
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        base = self._cursor
        nbytes = int(n_elements) * int(element_bytes)
        self._cursor += -(-nbytes // self.alignment) * self.alignment
        self._regions[name] = (base, nbytes, element_bytes)
        return base

    def addr(self, name: str, index: np.ndarray) -> np.ndarray:
        """Byte addresses of ``index`` elements within region ``name``."""
        base, _, ebytes = self._regions[name]
        return base + np.asarray(index, dtype=np.int64) * ebytes

    def region_bytes(self, name: str) -> int:
        return self._regions[name][1]

    @property
    def total_bytes(self) -> int:
        return self._cursor


@dataclass
class GPUKernelResult:
    """Outcome of one simulated kernel run."""

    #: Majority-vote class per query (must equal the CPU reference).
    predictions: np.ndarray
    #: Per-class vote counts.
    votes: np.ndarray
    metrics: KernelMetrics
    timing: KernelTiming
    #: Per-load-site statistics (one entry per device array the kernel
    #: read), for nvprof-style reports — see repro.analysis.profiler.
    site_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.timing.seconds

    def summary(self) -> Dict[str, float]:
        out = {"seconds": self.timing.seconds, "bound_by": self.timing.bound_by}
        out.update(self.metrics.as_dict())
        return out


class GPUKernel(ABC):
    """Base class for simulated GPU RF-classification kernels.

    Subclasses implement :meth:`_run` over their layout type; the public
    :meth:`run` validates inputs, assembles metrics and timing, and returns a
    :class:`GPUKernelResult` whose predictions are the actual majority votes.
    """

    #: Human-readable variant name (used in reports).
    name: str = "base"

    def __init__(
        self,
        spec: GPUSpec = TITAN_XP,
        timing_model: Optional[TimingModel] = None,
        record_trace: bool = False,
        launch_gate: Optional[Callable[[], float]] = None,
        verify_layout: bool = False,
        observer=None,
    ):
        self.spec = spec
        self.timing_model = timing_model or TimingModel(spec)
        self.record_trace = bool(record_trace)
        #: Called at launch; may raise (failed launch) or return simulated
        #: hang seconds.  Wired up by the reliability guard / fault plans.
        self.launch_gate = launch_gate
        #: Re-verify the layout's build-time checksums before traversing.
        self.verify_layout = bool(verify_layout)
        #: Observability sink (duck-typed, e.g. repro.obs.ObsSession); its
        #: ``on_gpu_kernel(kernel, result, grid)`` fires after each run.
        self.observer = observer
        #: TraceLog of the most recent run (when record_trace is set).
        self.trace = None

    # ------------------------------------------------------------------
    def run(self, layout, X: np.ndarray) -> GPUKernelResult:
        """Classify ``X`` against ``layout``, accumulating counters."""
        X = check_array_2d(X, "X")
        hang_s = 0.0
        if self.launch_gate is not None:
            hang_s = float(self.launch_gate() or 0.0)
        if self.verify_layout:
            from repro.reliability.integrity import verify_layout_integrity

            verify_layout_integrity(layout)
        metrics = KernelMetrics(launches=1)
        if self.record_trace:
            from repro.gpusim.trace import TraceLog

            self.trace = metrics.trace = TraceLog()
        grid = WarpGrid(X.shape[0], self.spec)
        votes = np.zeros((X.shape[0], layout.n_classes), dtype=np.int64)
        self._site_trackers = {}
        self._run(layout, X, grid, metrics, votes)
        timing = self.timing_model.time(metrics)
        timing = self._finalize_timing(timing, grid, metrics)
        if hang_s > 0.0:
            timing = replace(timing, seconds=timing.seconds + hang_s)
        site_stats = {
            name: {
                "requests": tr.requests,
                "transactions": tr.transactions,
                "cold_transactions": tr.cold_transactions,
                "footprint_bytes": tr.footprint_bytes,
                "issue_cost": tr.issue_cost,
                "l1_resident": tr.l1_resident,
                "l1_hit_rate": tr.l1_hit_rate,
            }
            for name, tr in self._site_trackers.items()
        }
        result = GPUKernelResult(
            predictions=votes.argmax(axis=1),
            votes=votes,
            metrics=metrics,
            timing=timing,
            site_stats=site_stats,
        )
        if self.observer is not None:
            self.observer.on_gpu_kernel(self, result, grid)
        return result

    def _finalize_timing(self, timing, grid, metrics):
        """Hook for kernels with costs outside the counter roofline (e.g.
        the collaborative kernel's block-serial critical path)."""
        return timing

    def _register_sites(self, trackers) -> None:
        """Record load-site trackers so run() can export their stats."""
        if isinstance(trackers, dict):
            self._site_trackers.update(trackers)
        else:
            for tr in trackers:
                self._site_trackers[tr.name] = tr

    @abstractmethod
    def _run(
        self,
        layout,
        X: np.ndarray,
        grid: WarpGrid,
        metrics: KernelMetrics,
        votes: np.ndarray,
    ) -> None:
        """Traverse every tree for every query, updating counters/votes."""

    # ------------------------------------------------------------------
    @staticmethod
    def _accumulate_votes(votes: np.ndarray, labels: np.ndarray) -> None:
        """Add one tree's per-query class labels into the vote table."""
        if np.any(labels < 0):
            raise RuntimeError("traversal left some queries unclassified")
        votes[np.arange(labels.shape[0], dtype=np.int64), labels] += 1

    def _query_addresses(
        self,
        space: AddressSpace,
        features: np.ndarray,
        query_idx: np.ndarray,
        n_features: int,
    ) -> np.ndarray:
        """Byte addresses of ``X[q, f]`` loads (row-major query matrix)."""
        return space.addr("X", query_idx * np.int64(n_features) + features)
