"""GPU hybrid kernel (paper §3.2, the best-performing GPU variant).

Two stages per tree:

* **Stage 1** — the tree's *root subtree* (depth ``RSD``) is cooperatively
  staged into shared memory by each thread block (adjacent threads load
  adjacent elements, so the global loads are perfectly coalesced), then all
  queries traverse it lock-step with shared-memory node accesses and a
  fixed-trip-count level loop (uniform loop branches).
* **Stage 2** — queries that leave the root subtree continue exactly like
  the independent kernel through the remaining subtrees in global memory.

This reproduces the paper's two claimed advantages: coalesced/shared node
accesses for the hot top-of-tree, and reduced branch divergence because the
stage-1 loop is uniform.
"""

from __future__ import annotations

import numpy as np

from repro.forest.tree import EMPTY, LEAF
from repro.gpusim.engine import WarpGrid
from repro.gpusim.memory import CoalescingTracker
from repro.kernels.base import AddressSpace
from repro.kernels.gpu_independent import GPUIndependentKernel
from repro.layout.hierarchical import HierarchicalForest


class GPUHybridKernel(GPUIndependentKernel):
    """Root subtree in shared memory, independent traversal below."""

    name = "gpu-hybrid"
    #: Stage-1 per-step warp instructions (shared loads are cheaper to
    #: address than global ones).
    INSTR_PER_STEP_S1 = 9
    #: Instructions per cooperative-staging load iteration.
    INSTR_PER_STAGE_ITER = 4
    #: Block-synchronised per-tree traversal keeps the L1 hot on the
    #: current tree's lower subtrees (paper §3.2.1).
    NODE_L1_HIT = 0.55

    def _run(self, layout: HierarchicalForest, X, grid: WarpGrid, metrics, votes):
        if not isinstance(layout, HierarchicalForest):
            raise TypeError("GPUHybridKernel expects a HierarchicalForest")
        n, n_features = X.shape
        space = self._make_space(layout, n, n_features)
        trackers = {
            name: CoalescingTracker(
                name,
                metrics,
                l1_resident=(name == "X"),
                l1_hit_rate=0.0 if name == "X" else self.NODE_L1_HIT,
            )
            for name in (
                "feature_id",
                "value",
                "subtree_node_offset",
                "subtree_depth",
                "connection_offset",
                "subtree_connection",
                "X",
            )
        }
        self._register_sites(trackers)
        rows = np.arange(n, dtype=np.int64)
        shared_limit = self.spec.shared_mem_per_sm
        for t in range(layout.n_trees):
            off, size = layout.root_subtree_slots(t)
            root_bytes = size * 8  # feature_id + value copies
            if root_bytes > shared_limit:
                raise ValueError(
                    f"root subtree of tree {t} needs {root_bytes} B of shared "
                    f"memory but the device has {shared_limit} B; reduce RSD"
                )
            self._stage_root_subtree(layout, grid, metrics, space, trackers, t)
            out, st, local, active = self._stage1(
                layout, X, t, grid, metrics, space, trackers, rows
            )
            if np.any(active):
                out = self._traverse_tree(
                    layout, X, t, grid, metrics, space, trackers, rows,
                    start_st=st, start_local=local, start_active=active, out=out,
                )
            self._accumulate_votes(votes, out)

    # ------------------------------------------------------------------
    def _stage_root_subtree(self, layout, grid, metrics, space, trackers, t):
        """Account the cooperative load of tree ``t``'s root subtree.

        Every block stages its own copy: the loads are perfectly coalesced
        (adjacent lanes -> adjacent elements), the first block's traffic is
        cold (DRAM), the remaining blocks hit L2.
        """
        off, size = layout.root_subtree_slots(t)
        txn_bytes = self.spec.transaction_bytes
        n_blocks = grid.n_blocks
        for name in ("feature_id", "value"):
            region_txns = -(-size * 4 // txn_bytes)
            requests = -(-size // self.spec.warp_size)
            metrics.global_load_requests += requests * n_blocks
            metrics.global_load_transactions += region_txns * n_blocks
            metrics.dram_transactions += region_txns  # first block only
            metrics.issue_weighted_transactions += region_txns * n_blocks
            metrics.footprint_bytes += region_txns * txn_bytes
        metrics.bytes_staged_shared += size * 8 * n_blocks
        stage_iters = -(-size // self.spec.threads_per_block)
        metrics.warp_instructions += (
            self.INSTR_PER_STAGE_ITER
            * stage_iters
            * grid.n_warps  # every warp participates in staging
        )
        # Block barrier fencing the staged nodes before stage 1 reads them
        # from shared memory (the __syncthreads after the cooperative load).
        grid.record_sync(metrics)

    # ------------------------------------------------------------------
    def _stage1(self, layout, X, t, grid, metrics, space, trackers, rows):
        """Lock-step traversal of the root subtree out of shared memory.

        Returns ``(out, st, local, active)`` where ``active`` marks queries
        that crossed into stage 2 with their start states.
        """
        n, n_features = X.shape
        st_root = int(layout.tree_root_subtree[t])
        base = int(layout.subtree_node_offset[st_root])
        sd = int(layout.subtree_depth[st_root])
        frontier_start = (1 << (sd - 1)) - 1

        local = np.zeros(n, dtype=np.int64)
        out = np.full(n, -1, dtype=np.int64)
        in_stage1 = np.ones(n, dtype=bool)
        next_st = np.zeros(n, dtype=np.int64)
        crossed = np.zeros(n, dtype=bool)

        for _level in range(sd):
            if not np.any(in_stage1):
                break
            g = base + local
            # Two shared-memory node loads per active warp-step.
            metrics.shared_load_requests += 2 * grid.active_warps(in_stage1)
            feats = np.where(in_stage1, layout.feature_id[g], EMPTY)
            is_leaf = in_stage1 & (feats == LEAF)
            inner = in_stage1 & ~is_leaf
            if np.any(is_leaf):
                out[is_leaf] = layout.value[g[is_leaf]].astype(np.int64)
            go_right = np.zeros(n, dtype=bool)
            if np.any(inner):
                f_safe = np.where(inner, feats, 0).astype(np.int64)
                trackers["X"].record(
                    self._query_addresses(space, f_safe, rows, n_features), inner
                )
                gi = g[inner]
                go_right[inner] = X[rows[inner], feats[inner]] >= layout.value[gi]
            # Frontier inner lanes cross to stage 2 (connection arrays are
            # in global memory, as in the independent kernel).
            crossing = inner & (local >= frontier_start)
            stay = inner & ~crossing
            if np.any(crossing):
                rank = local[crossing] - frontier_start
                cidx = np.zeros(n, dtype=np.int64)
                cidx[crossing] = (
                    layout.connection_offset[st_root]
                    + 2 * rank
                    + go_right[crossing]
                )
                trackers["connection_offset"].record(
                    space.addr(
                        "connection_offset", np.full(n, st_root, dtype=np.int64)
                    ),
                    crossing,
                )
                trackers["subtree_connection"].record(
                    space.addr("subtree_connection", cidx), crossing
                )
                nxt = layout.subtree_connection[cidx[crossing]].astype(np.int64)
                next_st[crossing] = nxt
                crossed |= crossing
                trackers["subtree_node_offset"].record(
                    space.addr("subtree_node_offset", next_st), crossing
                )
                trackers["subtree_depth"].record(
                    space.addr("subtree_depth", next_st), crossing
                )
                grid.record_step(metrics, crossing, self.INSTR_PER_CROSS)
            local[stay] = 2 * local[stay] + 1 + go_right[stay]
            grid.record_step(metrics, in_stage1, self.INSTR_PER_STEP_S1)
            # Fixed-trip-count level loop -> uniform loop branch.
            warps = grid.active_warps(in_stage1)
            metrics.branches += warps
            metrics.uniform_branches += warps
            in_stage1 = stay

        st = np.where(crossed, next_st, 0).astype(np.int64)
        local_out = np.zeros(n, dtype=np.int64)
        return out, st, local_out, crossed
