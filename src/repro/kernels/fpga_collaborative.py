"""FPGA collaborative kernel (paper Table 3 "Collaborative").

Each subtree is burst-loaded into BRAM/URAM and *all* queries are pushed
through its pipeline whether they traverse it or not, achieving a very low
II (3 cycles, everything on-chip) but paying two structural costs the paper
identifies:

* **Starvation**: pipeline slots are occupied by queries not present in the
  subtree — work items are ``n_queries x sum(levels of every subtree)``,
  which grows with depth while useful work shrinks as ``2^-s``.
* **Query-state round trip**: between subtrees each query's state (current
  subtree, node, progress) lives in external memory; the load->update->store
  dependency adds ~``2 x ext_load_latency`` serial cycles per (query,
  subtree) pair.  This term is what drives the paper's measured ~90% stall.

Together these make the collaborative variant the slowest despite its
best-in-class II — the paper's headline observation for this kernel.
"""

from __future__ import annotations

from repro.fpgasim.pipeline import derive_ii
from repro.fpgasim.replication import Replication
from repro.kernels.fpga_base import FPGAKernel
from repro.kernels.traversal_stats import traverse_tree_stats, subtree_level_totals
from repro.layout.hierarchical import HierarchicalForest


class FPGACollaborativeKernel(FPGAKernel):
    """Burst-loaded subtrees, all queries through every subtree."""

    name = "fpga-collaborative"
    #: Fully on-chip chain: BRAM node + compare = 3.
    II_CHAIN = ("bram_load", "compare")
    #: External round trips of query state per (query, subtree) pair.
    STATE_ROUNDTRIPS = 2.0

    def _run(self, layout: HierarchicalForest, X, replication: Replication, votes):
        if not isinstance(layout, HierarchicalForest):
            raise TypeError("FPGACollaborativeKernel expects a HierarchicalForest")
        n = X.shape[0]
        work_items = 0
        state_pairs = 0
        for t in range(layout.n_trees):
            stats = traverse_tree_stats(layout, X, t)
            self._accumulate_votes(votes, stats.labels)
            levels = subtree_level_totals(layout, t)
            work_items += n * levels
            first = int(layout.tree_root_subtree[t])
            last = (
                int(layout.tree_root_subtree[t + 1])
                if t + 1 < layout.n_trees
                else layout.n_subtrees
            )
            state_pairs += n * (last - first)
        ii = derive_ii(self.II_CHAIN, self.spec)
        serial_per_item = (
            self.STATE_ROUNDTRIPS
            * self.spec.ext_load_latency
            * state_pairs
            / max(1, work_items)
        )
        # Burst-staging every subtree once per run (bandwidth bytes).
        stage_bytes = layout.total_slots * 8
        return self.timer.time(
            work_items=work_items,
            ii=ii,
            replication=replication,
            random_accesses_per_item=0.0,
            stream_bytes_per_item=stage_bytes / max(1, work_items),
            extra_stall_cycles_per_item=serial_per_item,
            launches=layout.n_subtrees,
        )
