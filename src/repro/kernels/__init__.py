"""The paper's RF classification code variants (§3.2), GPU and FPGA.

GPU kernels (simulated on :mod:`repro.gpusim`):

* :class:`GPUCSRKernel` — baseline CSR traversal (one thread per query).
* :class:`GPUIndependentKernel` — hierarchical layout, per-thread traversal.
* :class:`GPUCollaborativeKernel` — subtree batches staged in shared memory,
  all queries pushed through every subtree (the paper keeps it for analysis;
  it is 10-20x slower than independent).
* :class:`GPUHybridKernel` — root subtree staged in shared memory (stage 1),
  independent traversal below (stage 2); the paper's best GPU variant.

FPGA kernels (simulated on :mod:`repro.fpgasim`): the same four variants as
pipeline cost models with the paper's initiation intervals.

Every kernel executes *functionally*: it really classifies the queries, and
tests assert the predictions equal the CPU reference, so the performance
counters are derived from genuine traversal traces.
"""

from importlib import import_module
from typing import Dict, List, Tuple, Union

from repro.kernels.base import GPUKernel, GPUKernelResult, AddressSpace
from repro.kernels.gpu_csr import GPUCSRKernel
from repro.kernels.gpu_independent import GPUIndependentKernel
from repro.kernels.gpu_collaborative import GPUCollaborativeKernel
from repro.kernels.gpu_hybrid import GPUHybridKernel
from repro.kernels.fpga_csr import FPGACSRKernel
from repro.kernels.fpga_independent import FPGAIndependentKernel
from repro.kernels.fpga_collaborative import FPGACollaborativeKernel
from repro.kernels.fpga_hybrid import FPGAHybridKernel

#: The single declarative (platform, variant) -> kernel-class registry.
#:
#: Backends (:mod:`repro.runtime.backends`) and the planner
#: (:mod:`repro.runtime.planner`) both consume this mapping, so a new
#: kernel registers in exactly one place.  Values are either a kernel
#: class or an ``"importable.module:ClassName"`` string resolved lazily on
#: first use — the cuML baseline lives in :mod:`repro.baselines.cuml_fil`,
#: which itself imports :mod:`repro.kernels.base`, and a lazy entry keeps
#: that edge from becoming an import cycle.
KERNEL_REGISTRY: Dict[Tuple[str, str], Union[type, str]] = {
    ("gpu", "csr"): GPUCSRKernel,
    ("gpu", "independent"): GPUIndependentKernel,
    ("gpu", "collaborative"): GPUCollaborativeKernel,
    ("gpu", "hybrid"): GPUHybridKernel,
    ("gpu", "cuml"): "repro.baselines.cuml_fil:CuMLFILKernel",
    ("fpga", "csr"): FPGACSRKernel,
    ("fpga", "independent"): FPGAIndependentKernel,
    ("fpga", "collaborative"): FPGACollaborativeKernel,
    ("fpga", "hybrid"): FPGAHybridKernel,
}


def _key(platform, variant) -> Tuple[str, str]:
    """Normalise enum members or plain strings into a registry key."""
    return (
        str(getattr(platform, "value", platform)),
        str(getattr(variant, "value", variant)),
    )


def registered_pairs() -> List[Tuple[str, str]]:
    """Sorted (platform, variant) pairs that have a kernel."""
    return sorted(KERNEL_REGISTRY)


def has_kernel(platform, variant) -> bool:
    return _key(platform, variant) in KERNEL_REGISTRY


def kernel_for(platform, variant) -> type:
    """Resolve the kernel class for ``(platform, variant)``.

    Accepts :class:`~repro.core.config.Platform` /
    :class:`~repro.core.config.KernelVariant` members or their string
    values.  Raises :class:`KeyError` listing the valid pairs when the
    combination has no kernel (the runtime layer wraps this into a
    :class:`~repro.runtime.plan.PlanError`).
    """
    key = _key(platform, variant)
    try:
        entry = KERNEL_REGISTRY[key]
    except KeyError:
        pairs = ", ".join(f"{p}/{v}" for p, v in registered_pairs())
        raise KeyError(
            f"no kernel registered for platform={key[0]!r} "
            f"variant={key[1]!r}; valid combinations: {pairs}"
        ) from None
    if isinstance(entry, str):
        module, _, name = entry.partition(":")
        entry = getattr(import_module(module), name)
        KERNEL_REGISTRY[key] = entry
    return entry


__all__ = [
    "GPUKernel",
    "GPUKernelResult",
    "AddressSpace",
    "GPUCSRKernel",
    "GPUIndependentKernel",
    "GPUCollaborativeKernel",
    "GPUHybridKernel",
    "FPGACSRKernel",
    "FPGAIndependentKernel",
    "FPGACollaborativeKernel",
    "FPGAHybridKernel",
    "KERNEL_REGISTRY",
    "kernel_for",
    "has_kernel",
    "registered_pairs",
]
