"""The paper's RF classification code variants (§3.2), GPU and FPGA.

GPU kernels (simulated on :mod:`repro.gpusim`):

* :class:`GPUCSRKernel` — baseline CSR traversal (one thread per query).
* :class:`GPUIndependentKernel` — hierarchical layout, per-thread traversal.
* :class:`GPUCollaborativeKernel` — subtree batches staged in shared memory,
  all queries pushed through every subtree (the paper keeps it for analysis;
  it is 10-20x slower than independent).
* :class:`GPUHybridKernel` — root subtree staged in shared memory (stage 1),
  independent traversal below (stage 2); the paper's best GPU variant.

FPGA kernels (simulated on :mod:`repro.fpgasim`): the same four variants as
pipeline cost models with the paper's initiation intervals.

Every kernel executes *functionally*: it really classifies the queries, and
tests assert the predictions equal the CPU reference, so the performance
counters are derived from genuine traversal traces.
"""

from repro.kernels.base import GPUKernel, GPUKernelResult, AddressSpace
from repro.kernels.gpu_csr import GPUCSRKernel
from repro.kernels.gpu_independent import GPUIndependentKernel
from repro.kernels.gpu_collaborative import GPUCollaborativeKernel
from repro.kernels.gpu_hybrid import GPUHybridKernel
from repro.kernels.fpga_csr import FPGACSRKernel
from repro.kernels.fpga_independent import FPGAIndependentKernel
from repro.kernels.fpga_collaborative import FPGACollaborativeKernel
from repro.kernels.fpga_hybrid import FPGAHybridKernel

__all__ = [
    "GPUKernel",
    "GPUKernelResult",
    "AddressSpace",
    "GPUCSRKernel",
    "GPUIndependentKernel",
    "GPUCollaborativeKernel",
    "GPUHybridKernel",
    "FPGACSRKernel",
    "FPGAIndependentKernel",
    "FPGACollaborativeKernel",
    "FPGAHybridKernel",
]
