"""Common infrastructure for the simulated FPGA kernels.

Each FPGA kernel classifies the queries functionally (votes come from the
same traversal statistics pass used for work-item counting) and produces a
:class:`FPGAKernelResult` holding the pipeline timing under a given
:class:`~repro.fpgasim.replication.Replication` configuration.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.fpgasim.device import ALVEO_U250, FPGASpec
from repro.fpgasim.pipeline import PipelineResult, PipelineTimer
from repro.fpgasim.replication import Replication
from repro.utils.validation import check_array_2d


@dataclass
class FPGAKernelResult:
    """Outcome of one simulated FPGA kernel run."""

    predictions: np.ndarray
    votes: np.ndarray
    pipeline: PipelineResult
    #: Extra simulated seconds from an injected hang (reliability testing).
    penalty_s: float = 0.0

    @property
    def seconds(self) -> float:
        return self.pipeline.seconds + self.penalty_s

    @property
    def stall_pct(self) -> float:
        return self.pipeline.stall_pct

    def summary(self) -> Dict[str, float]:
        return self.pipeline.as_dict()


class FPGAKernel(ABC):
    """Base class for the FPGA code variants."""

    name: str = "fpga-base"

    def __init__(
        self,
        spec: FPGASpec = ALVEO_U250,
        launch_gate: Optional[Callable[[], float]] = None,
        verify_layout: bool = False,
        observer=None,
    ):
        self.spec = spec
        self.timer = PipelineTimer(spec)
        #: Called at launch; may raise (failed launch) or return simulated
        #: hang seconds.  Wired up by the reliability guard / fault plans.
        self.launch_gate = launch_gate
        #: Re-verify the layout's build-time checksums before traversing.
        self.verify_layout = bool(verify_layout)
        #: Observability sink (duck-typed, e.g. repro.obs.ObsSession); its
        #: ``on_fpga_kernel(kernel, result, replication)`` fires per run.
        self.observer = observer

    def run(
        self,
        layout,
        X: np.ndarray,
        replication: Replication = Replication(),
    ) -> FPGAKernelResult:
        """Classify ``X`` and time the pipeline under ``replication``."""
        X = check_array_2d(X, "X")
        hang_s = 0.0
        if self.launch_gate is not None:
            hang_s = float(self.launch_gate() or 0.0)
        if self.verify_layout:
            from repro.reliability.integrity import verify_layout_integrity

            verify_layout_integrity(layout)
        votes = np.zeros((X.shape[0], layout.n_classes), dtype=np.int64)
        pipeline = self._run(layout, X, replication, votes)
        result = FPGAKernelResult(
            predictions=votes.argmax(axis=1),
            votes=votes,
            pipeline=pipeline,
            penalty_s=hang_s,
        )
        if self.observer is not None:
            self.observer.on_fpga_kernel(self, result, replication)
        return result

    @abstractmethod
    def _run(
        self, layout, X: np.ndarray, replication: Replication, votes: np.ndarray
    ) -> PipelineResult:
        """Accumulate votes and return the pipeline timing."""

    @staticmethod
    def _accumulate_votes(votes: np.ndarray, labels: np.ndarray) -> None:
        if np.any(labels < 0):
            raise RuntimeError("traversal left some queries unclassified")
        votes[np.arange(labels.shape[0], dtype=np.int64), labels] += 1
