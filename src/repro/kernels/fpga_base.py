"""Common infrastructure for the simulated FPGA kernels.

Each FPGA kernel classifies the queries functionally (votes come from the
same traversal statistics pass used for work-item counting) and produces a
:class:`FPGAKernelResult` holding the pipeline timing under a given
:class:`~repro.fpgasim.replication.Replication` configuration.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.fpgasim.device import ALVEO_U250, FPGASpec
from repro.fpgasim.pipeline import PipelineResult, PipelineTimer
from repro.fpgasim.replication import Replication
from repro.utils.validation import check_array_2d


@dataclass
class FPGAKernelResult:
    """Outcome of one simulated FPGA kernel run."""

    predictions: np.ndarray
    votes: np.ndarray
    pipeline: PipelineResult

    @property
    def seconds(self) -> float:
        return self.pipeline.seconds

    @property
    def stall_pct(self) -> float:
        return self.pipeline.stall_pct

    def summary(self) -> Dict[str, float]:
        return self.pipeline.as_dict()


class FPGAKernel(ABC):
    """Base class for the FPGA code variants."""

    name: str = "fpga-base"

    def __init__(self, spec: FPGASpec = ALVEO_U250):
        self.spec = spec
        self.timer = PipelineTimer(spec)

    def run(
        self,
        layout,
        X: np.ndarray,
        replication: Replication = Replication(),
    ) -> FPGAKernelResult:
        """Classify ``X`` and time the pipeline under ``replication``."""
        X = check_array_2d(X, "X")
        votes = np.zeros((X.shape[0], layout.n_classes), dtype=np.int64)
        pipeline = self._run(layout, X, replication, votes)
        return FPGAKernelResult(
            predictions=votes.argmax(axis=1), votes=votes, pipeline=pipeline
        )

    @abstractmethod
    def _run(
        self, layout, X: np.ndarray, replication: Replication, votes: np.ndarray
    ) -> PipelineResult:
        """Accumulate votes and return the pipeline timing."""

    @staticmethod
    def _accumulate_votes(votes: np.ndarray, labels: np.ndarray) -> None:
        if np.any(labels < 0):
            raise RuntimeError("traversal left some queries unclassified")
        votes[np.arange(labels.shape[0]), labels] += 1
