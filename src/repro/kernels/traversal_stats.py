"""Uninstrumented traversal statistics used by the FPGA cost models.

The FPGA pipeline algebra needs work-item counts rather than addresses:
per query-tree path length (= inner-loop iterations), subtree crossings
(= extra external accesses) and the number of levels walked inside the root
subtree (= hybrid stage-1 items).  This module computes all of them in one
vectorised pass over the hierarchical layout, together with the predicted
labels so FPGA kernels stay functional.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.forest.tree import EMPTY, LEAF
from repro.layout.hierarchical import HierarchicalForest


@dataclass
class TreeTraversalStats:
    """Per-query traversal statistics for one tree."""

    #: Nodes visited (inner-loop iterations), per query.
    path_lengths: np.ndarray
    #: Subtree-to-subtree crossings, per query.
    crossings: np.ndarray
    #: Steps taken inside the root subtree (hybrid stage 1), per query.
    stage1_levels: np.ndarray
    #: Predicted class label, per query.
    labels: np.ndarray

    @property
    def total_visits(self) -> int:
        return int(self.path_lengths.sum())

    @property
    def total_crossings(self) -> int:
        return int(self.crossings.sum())

    @property
    def total_stage1(self) -> int:
        return int(self.stage1_levels.sum())


def traverse_tree_stats(
    layout: HierarchicalForest, X: np.ndarray, tree: int
) -> TreeTraversalStats:
    """Traverse tree ``tree`` for all queries, counting work items."""
    X = np.ascontiguousarray(X, dtype=np.float32)
    n = X.shape[0]
    root = int(layout.tree_root_subtree[tree])
    st = np.full(n, root, dtype=np.int64)
    local = np.zeros(n, dtype=np.int64)
    out = np.full(n, -1, dtype=np.int64)
    path = np.zeros(n, dtype=np.int64)
    crossings = np.zeros(n, dtype=np.int64)
    stage1 = np.zeros(n, dtype=np.int64)
    active = np.ones(n, dtype=bool)
    rows = np.arange(n, dtype=np.int64)
    while np.any(active):
        g = layout.subtree_node_offset[st] + local
        feats = np.where(active, layout.feature_id[g], EMPTY)
        path[active] += 1
        in_root = active & (st == root)
        stage1[in_root] += 1
        is_leaf = active & (feats == LEAF)
        inner = active & ~is_leaf
        if np.any(is_leaf):
            out[is_leaf] = layout.value[g[is_leaf]].astype(np.int64)
        if np.any(inner):
            gi = g[inner]
            go_right = X[rows[inner], feats[inner]] >= layout.value[gi]
            sd = layout.subtree_depth[st[inner]]
            frontier_start = (np.int64(1) << (sd - 1).astype(np.int64)) - 1
            crossing_local = local[inner] >= frontier_start
            idx = np.flatnonzero(inner)
            stay = idx[~crossing_local]
            cross = idx[crossing_local]
            local[stay] = 2 * local[stay] + 1 + go_right[~crossing_local]
            if cross.size:
                rank = local[cross] - frontier_start[crossing_local]
                cidx = (
                    layout.connection_offset[st[cross]]
                    + 2 * rank
                    + go_right[crossing_local]
                )
                st[cross] = layout.subtree_connection[cidx].astype(np.int64)
                local[cross] = 0
                crossings[cross] += 1
        active = inner
    return TreeTraversalStats(
        path_lengths=path, crossings=crossings, stage1_levels=stage1, labels=out
    )


def subtree_level_totals(layout: HierarchicalForest, tree: int) -> int:
    """Sum of levels over all subtrees of ``tree``.

    This is the collaborative kernel's per-query pipeline occupancy: every
    query is pushed through every level of every subtree whether or not it is
    present (paper §3.2.2).
    """
    first = int(layout.tree_root_subtree[tree])
    last = (
        int(layout.tree_root_subtree[tree + 1])
        if tree + 1 < layout.n_trees
        else layout.n_subtrees
    )
    return int(layout.subtree_depth[first:last].sum())
