"""GPU independent kernel on the hierarchical layout (paper §3.2).

One thread per query; threads traverse subtrees iteratively.  Inside a
subtree the child index is arithmetic (``2n+1`` / ``2n+2``) so a step loads
only the node attributes (``feature_id`` + ``value``, contiguous within the
subtree) and the query feature.  Only when a thread crosses from one subtree
to the next does it touch the CSR-style connection arrays — the paper's key
reduction of irregular accesses versus CSR (one indirection per *subtree*
instead of two per *node*).
"""

from __future__ import annotations

import numpy as np

from repro.forest.tree import EMPTY, LEAF
from repro.gpusim.engine import WarpGrid
from repro.gpusim.memory import CoalescingTracker
from repro.gpusim.metrics import KernelMetrics
from repro.kernels.base import AddressSpace, GPUKernel
from repro.layout.hierarchical import HierarchicalForest


class GPUIndependentKernel(GPUKernel):
    """Per-thread traversal of the hierarchical layout."""

    name = "gpu-independent"
    #: Warp instructions per in-subtree step (2 attribute loads + query
    #: load + compare + arithmetic child indexing + loop bookkeeping).
    INSTR_PER_STEP = 11
    #: Extra warp instructions on a subtree crossing (connection lookups).
    INSTR_PER_CROSS = 8
    #: L1 hit rate on node/connection loads (see CoalescingTracker): the
    #: independent kernel's warps drift across trees, thrashing L1.
    NODE_L1_HIT = 0.15
    #: Bytes per feature-id element.  The paper's packed format stores node
    #: attributes in 48 bits (16-bit feature id + 32-bit value); the packed
    #: kernel variant in repro.extensions overrides this to 2.
    FEATURE_BYTES = 4

    def _make_space(self, layout: HierarchicalForest, n, n_features) -> AddressSpace:
        space = AddressSpace()
        space.alloc("feature_id", layout.total_slots, self.FEATURE_BYTES)
        space.alloc("value", layout.total_slots, 4)
        space.alloc("subtree_node_offset", layout.n_subtrees + 1, 8)
        space.alloc("subtree_depth", layout.n_subtrees, 4)
        space.alloc("connection_offset", layout.n_subtrees + 1, 8)
        space.alloc(
            "subtree_connection", max(1, layout.subtree_connection.shape[0]), 4
        )
        space.alloc("X", n * n_features, 4)
        return space

    def _run(self, layout: HierarchicalForest, X, grid: WarpGrid, metrics, votes):
        if not isinstance(layout, HierarchicalForest):
            raise TypeError("GPUIndependentKernel expects a HierarchicalForest")
        n, n_features = X.shape
        space = self._make_space(layout, n, n_features)
        trackers = {
            name: CoalescingTracker(
                name,
                metrics,
                l1_resident=(name == "X"),
                l1_hit_rate=0.0 if name == "X" else self.NODE_L1_HIT,
            )
            for name in (
                "feature_id",
                "value",
                "subtree_node_offset",
                "subtree_depth",
                "connection_offset",
                "subtree_connection",
                "X",
            )
        }
        self._register_sites(trackers)
        rows = np.arange(n, dtype=np.int64)
        for t in range(layout.n_trees):
            out = self._traverse_tree(
                layout, X, t, grid, metrics, space, trackers, rows,
            )
            self._accumulate_votes(votes, out)

    # ------------------------------------------------------------------
    def _traverse_tree(
        self, layout, X, t, grid, metrics, space, trackers, rows,
        start_st=None, start_local=None, start_active=None, out=None,
        stage1_uniform=False, node_trackers=None,
    ):
        """Instrumented lock-step traversal of one tree.

        The hybrid kernel reuses this loop for its stage 2 by passing
        explicit start states and (for stage 1) shared-memory node trackers.
        """
        n = X.shape[0]
        n_features = X.shape[1]
        st = (
            np.full(n, layout.tree_root_subtree[t], dtype=np.int64)
            if start_st is None
            else start_st
        )
        local = np.zeros(n, dtype=np.int64) if start_local is None else start_local
        active = np.ones(n, dtype=bool) if start_active is None else start_active
        if out is None:
            out = np.full(n, -1, dtype=np.int64)
        tr = trackers

        while np.any(active):
            g = layout.subtree_node_offset[st] + local
            if node_trackers is None:
                tr["feature_id"].record(space.addr("feature_id", g), active)
                tr["value"].record(space.addr("value", g), active)
            else:
                # Stage 1 of the hybrid kernel: node attributes come from
                # shared memory (two shared load requests per warp-step).
                node_trackers(grid, metrics, active)
            feats = np.where(active, layout.feature_id[g], EMPTY)
            is_leaf = active & (feats == LEAF)
            inner = active & ~is_leaf
            if np.any(is_leaf):
                out[is_leaf] = layout.value[g[is_leaf]].astype(np.int64)
            go_right = np.zeros(n, dtype=bool)
            if np.any(inner):
                f_safe = np.where(inner, feats, 0).astype(np.int64)
                tr["X"].record(
                    self._query_addresses(space, f_safe, rows, n_features), inner
                )
                gi = g[inner]
                # The left/right select compiles to predication on real
                # hardware, so it is not counted as a branch (nvprof's
                # branch_efficiency only sees divergent control flow).
                go_right[inner] = X[rows[inner], feats[inner]] >= layout.value[gi]

            # Split inner lanes into in-subtree steps vs subtree crossings.
            sd = layout.subtree_depth[st]
            frontier_start = (np.int64(1) << (sd - 1).astype(np.int64)) - 1
            crossing = inner & (local >= frontier_start)
            stay = inner & ~crossing
            if np.any(stay):
                local[stay] = 2 * local[stay] + 1 + go_right[stay]
            if np.any(crossing):
                rank = local[crossing] - frontier_start[crossing]
                cidx = np.zeros(n, dtype=np.int64)
                cidx[crossing] = (
                    layout.connection_offset[st[crossing]]
                    + 2 * rank
                    + go_right[crossing]
                )
                tr["connection_offset"].record(
                    space.addr("connection_offset", st), crossing
                )
                tr["subtree_connection"].record(
                    space.addr("subtree_connection", cidx), crossing
                )
                nxt = layout.subtree_connection[cidx[crossing]].astype(np.int64)
                st[crossing] = nxt
                local[crossing] = 0
                # New subtree's base offset + depth are fetched on crossing.
                tr["subtree_node_offset"].record(
                    space.addr("subtree_node_offset", st), crossing
                )
                tr["subtree_depth"].record(
                    space.addr("subtree_depth", st), crossing
                )
                grid.record_step(metrics, crossing, self.INSTR_PER_CROSS)
            if np.any(inner):
                # The crossing check itself is a branch (divergent when some
                # lanes cross and others stay).
                grid.record_branch(metrics, inner, crossing)

            grid.record_step(metrics, active, self.INSTR_PER_STEP)
            if stage1_uniform:
                # Fixed-trip-count level loop: the loop branch is uniform.
                warps = grid.active_warps(active)
                metrics.branches += warps
                metrics.uniform_branches += warps
            else:
                grid.record_loop_branch(metrics, active, inner)
            active = inner
        return out
