"""GPU CSR baseline kernel (paper §2.3).

One thread per query; each thread walks every tree through the CSR
indirection.  Per traversal step a thread loads, from global memory:

* ``feature_id[node]`` (4 B) and ``value[node]`` (4 B) — node attributes,
* its query feature ``X[q, f]`` (4 B),
* ``children_arr_idx[node]`` (8 B) and ``children_arr[idx + dir]`` (4 B) —
  the two indirect topology accesses the paper identifies as the layout's
  bottleneck (two potentially irregular loads per child).

All addresses are real (derived from the layout arrays), so coalescing,
cold-miss and divergence counters come from the actual traversal trace.
"""

from __future__ import annotations

import numpy as np

from repro.forest.tree import LEAF
from repro.gpusim.engine import WarpGrid
from repro.gpusim.memory import CoalescingTracker
from repro.gpusim.metrics import KernelMetrics
from repro.kernels.base import AddressSpace, GPUKernel
from repro.layout.csr import CSRForest


class GPUCSRKernel(GPUKernel):
    """Baseline: per-thread CSR traversal (the paper's reference point)."""

    name = "gpu-csr"
    #: Warp instructions per traversal step (loads, compare, address
    #: arithmetic, branches) — CSR pays for the double indirection.
    INSTR_PER_STEP = 18

    def _run(self, layout: CSRForest, X, grid: WarpGrid, metrics, votes):
        if not isinstance(layout, CSRForest):
            raise TypeError("GPUCSRKernel expects a CSRForest layout")
        n, n_features = X.shape
        space = AddressSpace()
        space.alloc("feature_id", layout.total_nodes, 4)
        space.alloc("value", layout.total_nodes, 4)
        space.alloc("children_arr_idx", layout.total_nodes, 8)
        space.alloc("children_arr", layout.total_children_entries, 4)
        space.alloc("X", n * n_features, 4)

        tr_feat = CoalescingTracker("feature_id", metrics, l1_hit_rate=0.10)
        tr_val = CoalescingTracker("value", metrics, l1_hit_rate=0.10)
        # The two topology loads form a dependent chain (children_arr_idx
        # must return before children_arr can issue), halving the warp's
        # memory-level parallelism — the bottleneck the paper attacks.
        tr_caidx = CoalescingTracker(
            "children_arr_idx", metrics, element_bytes=8, issue_cost=2.5,
            l1_hit_rate=0.10,
        )
        tr_ca = CoalescingTracker(
            "children_arr", metrics, issue_cost=2.5, l1_hit_rate=0.10
        )
        tr_x = CoalescingTracker("X", metrics, l1_resident=True)
        self._register_sites([tr_feat, tr_val, tr_caidx, tr_ca, tr_x])

        rows = np.arange(n, dtype=np.int64)
        for t in range(layout.n_trees):
            base = layout.tree_node_offset[t]
            cbase = layout.tree_children_offset[t]
            cur = np.zeros(n, dtype=np.int64)
            out = np.full(n, -1, dtype=np.int64)
            active = np.ones(n, dtype=bool)
            while np.any(active):
                g = base + cur
                # Node attribute loads (masked to active lanes).
                tr_feat.record(space.addr("feature_id", g), active)
                tr_val.record(space.addr("value", g), active)
                feats = np.where(active, layout.feature_id[g], 0)
                is_leaf = active & (feats == LEAF)
                inner = active & ~is_leaf
                if np.any(is_leaf):
                    out[is_leaf] = layout.value[g[is_leaf]].astype(np.int64)
                # Inner lanes: query feature + double topology indirection.
                if np.any(inner):
                    f_safe = np.where(inner, feats, 0).astype(np.int64)
                    tr_x.record(
                        self._query_addresses(space, f_safe, rows, n_features),
                        inner,
                    )
                    go_left = np.zeros(n, dtype=bool)
                    gi = g[inner]
                    go_left[inner] = (
                        X[rows[inner], feats[inner]] < layout.value[gi]
                    )
                    tr_caidx.record(space.addr("children_arr_idx", g), inner)
                    ci = np.zeros(n, dtype=np.int64)
                    ci[inner] = layout.children_arr_idx[gi] + np.where(
                        go_left[inner], 0, 1
                    )
                    tr_ca.record(space.addr("children_arr", cbase + ci), inner)
                    cur[inner] = layout.children_arr[cbase + ci[inner]]
                grid.record_step(metrics, active, self.INSTR_PER_STEP)
                new_active = inner
                grid.record_loop_branch(metrics, active, new_active)
                active = new_active
            self._accumulate_votes(votes, out)
