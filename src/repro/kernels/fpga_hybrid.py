"""FPGA hybrid kernel (paper Table 3 "Hybrid" and "Hybrid Split").

Two sequential pipeline stages per run:

* **Stage 1** — the root subtree sits in BRAM/URAM; every query streams
  through it at II 3.  The stage keeps the pipeline fully utilised (every
  query must traverse the root subtree) but streams query state + features
  from external memory, which is what limits its replication: the paper
  found replicating stage 1 stalls external memory at ~70%, motivating the
  *split* configuration (one stage-1 CU per SLR, stage 2 replicated).
* **Stage 2** — remaining subtrees traversed from external memory at the
  independent kernel's II of 76.

Average stage-2 utilisation drops to ``2^-s`` of the queries (paper
§3.2.2), which falls out of the work-item counting here.
"""

from __future__ import annotations

from repro.fpgasim.pipeline import PipelineResult, derive_ii
from repro.fpgasim.replication import Replication
from repro.kernels.fpga_base import FPGAKernel
from repro.kernels.traversal_stats import traverse_tree_stats
from repro.layout.hierarchical import HierarchicalForest


class FPGAHybridKernel(FPGAKernel):
    """On-chip root subtree stage + external-memory stage."""

    name = "fpga-hybrid"
    II_CHAIN_S1 = ("bram_load", "compare")
    II_CHAIN_S2 = ("ext_load", "bram_load", "compare", "arith")
    #: Query state + feature bytes streamed from external memory per
    #: stage-1 item; the contention driver when stage 1 is replicated
    #: (the paper saw ~70% external-memory stall at 12 stage-1 CUs/SLR).
    S1_STREAM_BYTES = 32.0
    #: Serial stage-1 cycles per item beyond the pipelined II: query-state
    #: housekeeping between levels (paper reports stage-1 II "between 1 and
    #: 3" but its measured stage-1 throughput corresponds to ~11 cycles).
    S1_SERIAL_CYCLES = 8.0
    #: Random external accesses per stage-1 item when stage-1 streams from
    #: multiple CUs interleave on one channel (state + feature reads).
    S1_RANDOM_ACCESSES = 3.5
    CROSS_ACCESSES = 2.0

    def _run(self, layout: HierarchicalForest, X, replication: Replication, votes):
        if not isinstance(layout, HierarchicalForest):
            raise TypeError("FPGAHybridKernel expects a HierarchicalForest")
        s1_items = 0
        s2_items = 0
        crossings = 0
        stage_bytes = 0
        for t in range(layout.n_trees):
            stats = traverse_tree_stats(layout, X, t)
            self._accumulate_votes(votes, stats.labels)
            s1_items += stats.total_stage1
            s2_items += stats.total_visits - stats.total_stage1
            crossings += stats.total_crossings
            _, size = layout.root_subtree_slots(t)
            stage_bytes += size * 8

        ii1 = derive_ii(self.II_CHAIN_S1, self.spec)
        ii2 = derive_ii(self.II_CHAIN_S2, self.spec)

        spec = self.spec
        freq_mhz = replication.freq_mhz or spec.clock_mhz
        freq_hz = freq_mhz * 1e6
        cus = replication.total_cus
        n_slrs = replication.n_slrs
        s1_cus = n_slrs if replication.split_stage1 else cus

        rand_per_item = 1.0
        if s2_items:
            rand_per_item += self.CROSS_ACCESSES * crossings / s2_items

        # Per-CU pipeline cycles of the two (sequential) stages.
        depth = spec.pipeline_depth * layout.n_trees
        c1 = s1_items / s1_cus * (ii1 + self.S1_SERIAL_CYCLES) + depth
        c2 = s2_items / cus * ii2 + depth
        pipeline_cycles = c1 + c2

        # Per-SLR external-memory channel service cycles.  A single stage-1
        # CU per SLR reads query state/features as long prefetchable bursts;
        # multiple stage-1 CUs interleave their streams and destroy DRAM row
        # locality, degrading every access to a random one — the paper's
        # "replicating stage one caused ~70% external memory stalling"
        # observation, and the reason its split configuration exists.
        bytes_per_cycle = spec.ext_bandwidth_per_slr / freq_hz
        s1_stream_total = s1_items * self.S1_STREAM_BYTES + stage_bytes
        if not replication.split_stage1 and replication.cus_per_slr > 1:
            channel = s1_items * self.S1_RANDOM_ACCESSES * spec.ext_random_service
        else:
            channel = s1_stream_total / bytes_per_cycle
        channel += s2_items * rand_per_item * spec.ext_random_service
        channel /= n_slrs

        # Roofline of pipeline compute vs channel service, with a soft
        # overlap penalty, then the device's baseline stall.
        total = max(pipeline_cycles, channel) + 0.3 * min(pipeline_cycles, channel)
        total /= 1.0 - spec.base_stall
        stall_pct = 1.0 - pipeline_cycles / total if total > 0 else 0.0
        return PipelineResult(
            seconds=total / freq_hz,
            cycles_per_cu=total,
            stall_pct=stall_pct,
            ii=float(ii2),
            freq_mhz=freq_mhz,
            work_items=s1_items + s2_items,
        )
