"""FPGA CSR baseline kernel (paper Table 3, "Baseline (CSR)").

The traversal loop's carried dependency chain runs through four external
loads (node attributes, the query feature, ``children_arr_idx`` and
``children_arr``) before the next node index is known, giving the paper's
II of 292 cycles.  Work items are node visits; every item presents the SLR
channel with four random external accesses.
"""

from __future__ import annotations

import numpy as np

from repro.fpgasim.pipeline import derive_ii
from repro.fpgasim.replication import Replication
from repro.forest.tree import LEAF
from repro.kernels.fpga_base import FPGAKernel
from repro.layout.csr import CSRForest


class FPGACSRKernel(FPGAKernel):
    """Baseline CSR pipeline."""

    name = "fpga-csr"
    #: Loop-carried dependency chain (see module docstring): 4*72 + 4 = 292.
    II_CHAIN = (
        "ext_load",  # node attributes
        "ext_load",  # query feature
        "ext_load",  # children_arr_idx
        "ext_load",  # children_arr
        "compare",
        "arith",
        "select",
        "arith",
    )
    RANDOM_ACCESSES_PER_ITEM = 4.0

    def _run(self, layout: CSRForest, X, replication: Replication, votes):
        if not isinstance(layout, CSRForest):
            raise TypeError("FPGACSRKernel expects a CSRForest layout")
        n = X.shape[0]
        rows = np.arange(n, dtype=np.int64)
        total_visits = 0
        for t in range(layout.n_trees):
            visits, labels = self._tree_visits(layout, X, t, rows)
            total_visits += visits
            self._accumulate_votes(votes, labels)
        ii = derive_ii(self.II_CHAIN, self.spec)
        return self.timer.time(
            work_items=total_visits,
            ii=ii,
            replication=replication,
            random_accesses_per_item=self.RANDOM_ACCESSES_PER_ITEM,
            launches=layout.n_trees,
        )

    @staticmethod
    def _tree_visits(layout: CSRForest, X, t, rows):
        """Count node visits + compute labels for one tree (vectorised)."""
        base = layout.tree_node_offset[t]
        cbase = layout.tree_children_offset[t]
        n = X.shape[0]
        cur = np.zeros(n, dtype=np.int64)
        out = np.full(n, -1, dtype=np.int64)
        active = np.ones(n, dtype=bool)
        visits = 0
        while np.any(active):
            visits += int(np.count_nonzero(active))
            g = base + cur[active]
            feats = layout.feature_id[g]
            leaf = feats == LEAF
            act_idx = np.flatnonzero(active)
            if np.any(leaf):
                done = act_idx[leaf]
                out[done] = layout.value[base + cur[done]].astype(np.int64)
                active[done] = False
                act_idx = act_idx[~leaf]
                if act_idx.size == 0:
                    break
                g = base + cur[act_idx]
                feats = layout.feature_id[g]
            go_left = X[rows[act_idx], feats] < layout.value[g]
            ci = layout.children_arr_idx[g] + np.where(go_left, 0, 1)
            cur[act_idx] = layout.children_arr[cbase + ci]
        return visits, out
