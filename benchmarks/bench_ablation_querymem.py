"""Ablation: query features in L1 vs streamed from global memory.

The paper evaluated keeping queries in shared memory versus global memory
and "found no significant difference in performance since node accesses
remain the primary bottleneck" (§3.2.1).  This ablation disables the model's
L1-residency of the query matrix: simulated time should move only modestly,
confirming node accesses dominate the model too.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.forest.tree import random_tree
from repro.kernels import GPUIndependentKernel
from repro.layout.hierarchical import HierarchicalForest, LayoutParams
from repro.utils.tables import format_table


class _NoL1QueriesKernel(GPUIndependentKernel):
    """Independent kernel with query loads treated as ordinary globals."""

    name = "gpu-independent-queries-in-global"

    def _make_space(self, layout, n, n_features):
        return super()._make_space(layout, n, n_features)

    def _run(self, layout, X, grid, metrics, votes):
        super()._run(layout, X, grid, metrics, votes)
        # Undo the L1 discount: re-charge the query reuse at full weight.
        delta = metrics.l1_transactions * (1.0 - 0.15)
        metrics.issue_weighted_transactions += delta
        metrics.l1_transactions = 0


def _run():
    rng = np.random.default_rng(41)
    trees = [random_tree(rng, 16, 14, leaf_prob=0.15, min_nodes=3) for _ in range(10)]
    X = rng.standard_normal((4096, 16)).astype(np.float32)
    hier = HierarchicalForest.from_trees(trees, LayoutParams(6))
    fast = GPUIndependentKernel().run(hier, X)
    slow = _NoL1QueriesKernel().run(hier, X)
    assert np.array_equal(fast.predictions, slow.predictions)
    return {
        "queries_in_l1_s": fast.seconds,
        "queries_in_global_s": slow.seconds,
        "slowdown": slow.seconds / fast.seconds,
    }


def test_ablation_query_memory(benchmark):
    out = run_once(benchmark, _run)
    print(
        "\n"
        + format_table(
            ["metric", "value"],
            [[k, v] for k, v in out.items()],
            title="Ablation: query-feature placement (paper §3.2.1)",
            float_digits=6,
        )
    )
    # Paper: "no significant difference" — node accesses dominate.  Allow
    # up to ~2.5x in the model (the paper's statement is qualitative).
    assert 1.0 <= out["slowdown"] < 2.5
