"""Fig. 7 bench: GPU speedups over CSR (independent/hybrid/cuML)."""

from benchmarks.conftest import run_once
from repro.experiments import fig7_gpu_speedup as exp


def test_fig7_gpu_speedup(benchmark, bench_scale):
    rows = run_once(benchmark, exp.run, scale=bench_scale)
    print("\n" + exp.render(rows))
    for r in rows:
        if r["variant"] != "csr":
            assert r["speedup"] > 1.0, r
    # Hybrid beats independent at every (dataset, depth, SD).
    key = lambda r: (r["dataset"], r["depth"], r["sd"])
    ind = {key(r): r["speedup"] for r in rows if r["variant"] == "independent"}
    hyb = {key(r): r["speedup"] for r in rows if r["variant"] == "hybrid"}
    for k in ind:
        assert hyb[k] > ind[k]
