"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures (DESIGN.md §4)
at the ``default`` experiment scale and prints the same rows/series the
paper reports.  Set ``REPRO_BENCH_SCALE=smoke`` for a fast pass or ``full``
for the complete grids.

Trained forests are cached under ``.cache/forests`` (see
``repro.experiments.common``), so the first run pays the training cost and
subsequent runs are simulator-bound.
"""

import os

import pytest


@pytest.fixture(scope="session")
def bench_scale():
    return os.environ.get("REPRO_BENCH_SCALE", "default")


def run_once(benchmark, fn, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
