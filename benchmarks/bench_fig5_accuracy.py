"""Fig. 5 bench: accuracy heat-maps (depth x trees) per dataset."""

from benchmarks.conftest import run_once
from repro.experiments import fig5_accuracy as exp


def test_fig5_accuracy(benchmark, bench_scale):
    rows = run_once(benchmark, exp.run, scale=bench_scale)
    print("\n" + exp.render(rows))
    # Shape: for every dataset, peak accuracy clearly above the depth-5
    # accuracy at the largest ensemble (the paper's motivation for depth).
    for name in {r["dataset"] for r in rows}:
        sub = [r for r in rows if r["dataset"] == name]
        max_trees = max(r["n_trees"] for r in sub)
        shallow = min(
            r["accuracy"]
            for r in sub
            if r["n_trees"] == max_trees and r["depth"] == min(x["depth"] for x in sub)
        )
        peak = max(r["accuracy"] for r in sub)
        assert peak >= shallow
