"""Ablation: the timing model's L2 capacity correction (DESIGN.md §6).

Two checks:

1. Simulated time with vs without the capacity correction (the correction
   can only add DRAM traffic, never remove it).
2. The analytic compulsory + capacity model against an *exact* LRU replay
   of the kernel's real recorded address trace, at both an L2-sized cache
   and a deliberately undersized one (the capacity regime).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.forest.tree import random_tree
from repro.gpusim import analytic_vs_exact
from repro.gpusim.device import TITAN_XP
from repro.gpusim.timing import TimingModel
from repro.kernels import GPUIndependentKernel
from repro.layout.hierarchical import HierarchicalForest, LayoutParams
from repro.utils.tables import format_table


def _workload():
    rng = np.random.default_rng(31)
    trees = [random_tree(rng, 16, 14, leaf_prob=0.15, min_nodes=3) for _ in range(10)]
    X = rng.standard_normal((4096, 16)).astype(np.float32)
    return HierarchicalForest.from_trees(trees, LayoutParams(6)), X


def _run():
    hier, X = _workload()
    kernel = GPUIndependentKernel(
        timing_model=TimingModel(TITAN_XP, l2_capacity_correction=True),
        record_trace=True,
    )
    with_corr = kernel.run(hier, X)
    without = GPUIndependentKernel(
        timing_model=TimingModel(TITAN_XP, l2_capacity_correction=False)
    ).run(hier, X)

    footprint = with_corr.metrics.footprint_bytes
    # Exact replay of the real trace: L2-sized and quarter-footprint caches.
    l2_cmp = analytic_vs_exact(kernel.trace, footprint, TITAN_XP.l2_bytes)
    small = max(128 * 16, footprint // 4) // (128 * 16) * (128 * 16)
    small_cmp = analytic_vs_exact(kernel.trace, footprint, small)
    return {
        "with_correction_s": with_corr.seconds,
        "without_correction_s": without.seconds,
        "footprint_mb": footprint / 1e6,
        "l2_exact_miss_rate": l2_cmp["exact_miss_rate"],
        "l2_analytic_miss_rate": l2_cmp["analytic_miss_rate"],
        "small_cache_exact_miss_rate": small_cmp["exact_miss_rate"],
        "small_cache_analytic_miss_rate": small_cmp["analytic_miss_rate"],
        "small_cache_ratio": small_cmp["ratio"],
    }


def test_ablation_cache_model(benchmark):
    out = run_once(benchmark, _run)
    print(
        "\n"
        + format_table(
            ["metric", "value"],
            [[k, v] for k, v in out.items()],
            title="Ablation: L2 capacity correction vs exact LRU replay",
            float_digits=6,
        )
    )
    # The correction can only slow the kernel down (more DRAM traffic).
    assert out["with_correction_s"] >= out["without_correction_s"]
    # Analytic tracks the exact replay at L2 size...
    assert abs(
        out["l2_analytic_miss_rate"] - out["l2_exact_miss_rate"]
    ) < 0.05
    # ...and stays within 2x in the capacity regime.
    assert 0.5 < out["small_cache_ratio"] < 2.0
