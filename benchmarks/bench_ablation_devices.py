"""Ablation: device sensitivity of the kernel ordering.

The paper's conclusions are about a *layout*, not one GPU: the hierarchical
variants should beat CSR, and the hybrid should beat the independent, on
any device with the same architectural shape (SIMT warps + cached DRAM).
This ablation reruns the Fig. 7 comparison on three device models — the
paper's TITAN Xp, a smaller GTX-1080-class part and a V100-class part —
and asserts the ordering survives while absolute times scale with device
capability.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.baselines import CuMLFILKernel, FILForest
from repro.forest.tree import random_tree
from repro.gpusim.device import GTX_1080, TITAN_XP, V100_LIKE
from repro.kernels import GPUCSRKernel, GPUHybridKernel, GPUIndependentKernel
from repro.layout.csr import CSRForest
from repro.layout.hierarchical import HierarchicalForest, LayoutParams
from repro.utils.tables import format_table

DEVICES = [GTX_1080, TITAN_XP, V100_LIKE]


def _run():
    rng = np.random.default_rng(71)
    trees = [random_tree(rng, 18, 14, leaf_prob=0.13, min_nodes=3) for _ in range(12)]
    X = rng.standard_normal((6144, 18)).astype(np.float32)
    csr_layout = CSRForest.from_trees(trees)
    hier = HierarchicalForest.from_trees(trees, LayoutParams(6))
    fil = FILForest.from_trees(trees)
    rows = []
    for spec in DEVICES:
        csr = GPUCSRKernel(spec=spec).run(csr_layout, X)
        ind = GPUIndependentKernel(spec=spec).run(hier, X)
        hyb = GPUHybridKernel(spec=spec).run(hier, X)
        cu = CuMLFILKernel(spec=spec).run(fil, X)
        rows.append(
            {
                "device": spec.name,
                "csr_s": csr.seconds,
                "ind_x": csr.seconds / ind.seconds,
                "hyb_x": csr.seconds / hyb.seconds,
                "cuml_x": csr.seconds / cu.seconds,
            }
        )
    return rows


def test_ablation_device_sensitivity(benchmark):
    rows = run_once(benchmark, _run)
    print(
        "\n"
        + format_table(
            ["device", "CSR sim s", "ind x", "hyb x", "cuML x"],
            [
                [r["device"], r["csr_s"], r["ind_x"], r["hyb_x"], r["cuml_x"]]
                for r in rows
            ],
            title="Ablation: kernel ordering across device models",
            float_digits=4,
        )
    )
    for r in rows:
        # The paper's ordering holds on every device model.
        assert r["hyb_x"] > r["ind_x"] > 1.0
        assert r["cuml_x"] > 1.0
    # Absolute CSR time scales with device capability.
    by = {r["device"]: r["csr_s"] for r in rows}
    assert by["GTX 1080"] > by["TITAN Xp"] > by["V100-like"]
