"""Benchmark harness package (one target per paper table/figure)."""
