"""Table 3 bench: FPGA variant comparison on the synthetic workload."""

from benchmarks.conftest import run_once
from repro.experiments import table3_fpga as exp


def test_table3_fpga(benchmark, bench_scale):
    rows = run_once(benchmark, exp.run, scale=bench_scale)
    print("\n" + exp.render(rows))
    by = {r["version"]: r for r in rows}
    assert by["hybrid"]["vs_csr"] > by["independent"]["vs_csr"] > 1.0
    assert by["collaborative"]["vs_csr"] < 0.5
    assert (
        by["independent-4S12C"]["vs_csr"]
        > by["hybrid-split-4S10C"]["vs_csr"]
        > by["hybrid-4S12C"]["vs_csr"]
    )
