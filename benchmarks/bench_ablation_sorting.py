"""Ablation: Goldfarb-style query presorting (paper §5, declined).

The paper declines presorting, arguing the cost "cannot be amortized" for
high-dimensional ML data.  This bench measures both sides in the model: the
kernel-time gain from warp-coherent queries and the estimated device cost
of the sort itself.  In this model the net effect at reproduction scale is
a small gain — a documented deviation from the paper's qualitative
judgement (their concern includes non-numeric features and per-batch
re-sorting, which the model does not price).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.baselines import reference_predict
from repro.extensions import sort_queries, sorting_cost_seconds
from repro.forest.tree import random_tree
from repro.kernels import GPUIndependentKernel
from repro.layout.hierarchical import HierarchicalForest, LayoutParams
from repro.utils.tables import format_table


def _run():
    rng = np.random.default_rng(61)
    trees = [random_tree(rng, 16, 14, leaf_prob=0.12, min_nodes=3) for _ in range(12)]
    X = rng.standard_normal((8192, 16)).astype(np.float32)
    hier = HierarchicalForest.from_trees(trees, LayoutParams(6))

    base = GPUIndependentKernel().run(hier, X)
    Xs, order = sort_queries(trees, X, depth=8)
    srt = GPUIndependentKernel().run(hier, Xs)
    inv = np.argsort(order)
    assert np.array_equal(srt.predictions[inv], base.predictions)
    assert np.array_equal(base.predictions, reference_predict(trees, X))

    sort_cost = sorting_cost_seconds(X.shape[0], X.shape[1])
    return {
        "unsorted_s": base.seconds,
        "sorted_kernel_s": srt.seconds,
        "sort_cost_s": sort_cost,
        "kernel_gain": base.seconds / srt.seconds,
        "net_vs_baseline": (srt.seconds + sort_cost) / base.seconds,
        "branch_eff_unsorted": base.metrics.branch_efficiency,
        "branch_eff_sorted": srt.metrics.branch_efficiency,
    }


def test_ablation_query_sorting(benchmark):
    out = run_once(benchmark, _run)
    print(
        "\n"
        + format_table(
            ["metric", "value"],
            [[k, v] for k, v in out.items()],
            title="Ablation: query presorting (Goldfarb et al., paper §5)",
            float_digits=6,
        )
    )
    # Sorting improves warp coherence (never hurts the kernel itself)...
    assert out["kernel_gain"] >= 1.0
    assert out["branch_eff_sorted"] >= out["branch_eff_unsorted"]
    # ...and its gain is modest (<= 1.5x), consistent with the paper's
    # decision that it is not where the headroom is.
    assert out["kernel_gain"] < 1.5
