"""Fig. 6 bench: hierarchical/CSR memory-footprint ratios."""

from benchmarks.conftest import run_once
from repro.experiments import fig6_memory as exp


def test_fig6_memory(benchmark, bench_scale):
    rows = run_once(benchmark, exp.run, scale=bench_scale)
    print("\n" + exp.render(rows))
    by_sd = {}
    for r in rows:
        by_sd.setdefault(r["sd"], []).append(r["ratio"])
    sds = sorted(by_sd)
    # Paper: footprint ratio grows with subtree depth; the largest SD is
    # clearly above the smallest.
    means = [sum(by_sd[sd]) / len(by_sd[sd]) for sd in sds]
    assert means[-1] > means[0]
