"""Table 2 bench: root-subtree-depth sweep (GPU hybrid + FPGA independent)."""

from benchmarks.conftest import run_once
from repro.experiments import table2_rsd as exp


def test_table2_rsd(benchmark, bench_scale):
    rows = run_once(benchmark, exp.run, scale=bench_scale)
    print("\n" + exp.render(rows))
    for r in rows:
        # GPU hybrid beats CSR at every RSD; FPGA seconds are ~flat in RSD
        # (within 25%), matching the paper's FX columns.
        for rsd in exp.RSD_VALUES:
            assert r[f"G{rsd}"] > 1.0
        fs = [r[f"F{rsd}"] for rsd in exp.RSD_VALUES]
        assert max(fs) / min(fs) < 1.25
