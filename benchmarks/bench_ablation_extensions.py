"""Ablation: the paper's negative results (§3.2.1 and §5).

1. K-Means tree clustering by feature profile: the paper found "no
   significant performance benefit" — reordering trees must move the
   independent kernel's time by only a few percent.
2. Block-per-tree scheduling: the paper measured a "significant slowdown"
   (2-10x) versus the independent variant.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.extensions import (
    GPUBlockPerTreeKernel,
    GPUGreedyKernel,
    cluster_trees_by_features,
)
from repro.forest.tree import random_tree
from repro.kernels import GPUIndependentKernel
from repro.layout.hierarchical import HierarchicalForest, LayoutParams
from repro.utils.tables import format_table


def _run():
    rng = np.random.default_rng(51)
    trees = [random_tree(rng, 18, 13, leaf_prob=0.15, min_nodes=3) for _ in range(16)]
    X = rng.standard_normal((6144, 18)).astype(np.float32)

    baseline = GPUIndependentKernel().run(
        HierarchicalForest.from_trees(trees, LayoutParams(6)), X
    )
    order = cluster_trees_by_features(trees, 18, k=4, seed=0)
    clustered = GPUIndependentKernel().run(
        HierarchicalForest.from_trees([trees[i] for i in order], LayoutParams(6)), X
    )
    hier = HierarchicalForest.from_trees(trees, LayoutParams(6))
    block_per_tree = GPUBlockPerTreeKernel().run(hier, X)
    greedy = GPUGreedyKernel().run(hier, X)
    assert np.array_equal(baseline.predictions, clustered.predictions)
    assert np.array_equal(baseline.predictions, block_per_tree.predictions)
    assert np.array_equal(baseline.predictions, greedy.predictions)
    return {
        "independent_s": baseline.seconds,
        "kmeans_clustered_s": clustered.seconds,
        "clustering_effect": clustered.seconds / baseline.seconds,
        "block_per_tree_s": block_per_tree.seconds,
        "block_per_tree_slowdown": block_per_tree.seconds / baseline.seconds,
        "greedy_s": greedy.seconds,
        "greedy_slowdown": greedy.seconds / baseline.seconds,
        "greedy_warp_eff_gain": (
            greedy.metrics.warp_efficiency - baseline.metrics.warp_efficiency
        ),
    }


def test_ablation_extensions(benchmark):
    out = run_once(benchmark, _run)
    print(
        "\n"
        + format_table(
            ["metric", "value"],
            [[k, v] for k, v in out.items()],
            title="Ablation: paper §3.2.1 negative results",
            float_digits=6,
        )
    )
    # 1) Clustering: no significant effect (within 10%).
    assert 0.9 < out["clustering_effect"] < 1.1
    # 2) Block-per-tree: significant slowdown (paper: 2-10x).
    assert out["block_per_tree_slowdown"] > 1.5
    # 3) Greedy refill (§5): divergence improves but the variant is not
    # faster overall — the paper's reason for declining it.
    assert out["greedy_warp_eff_gain"] > 0.1
    assert out["greedy_slowdown"] >= 0.95
