"""Reliability overhead: the clean path must not pay for integrity.

Checksums are computed once when a layout is built; the acceptance bar for
the reliability subsystem is that a normal (fault-free) classification run
pays *nothing* beyond that build-time hash:

1. Simulated device seconds are bit-identical with and without attached
   checksums (the kernels never consult them unless asked).
2. No checksum verification executes on the clean path (counted by
   instrumenting ``LayoutIntegrity.verify_arrays``).
3. Wall-clock per classify call stays within noise of the no-integrity
   build (generous 1.5x bound — the arrays are untouched, so anything
   above noise would be a wiring bug).
4. The guarded wrapper's clean path adds only its one post-transfer check
   per layout, and returns the exact same predictions and seconds.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.classifier import HierarchicalForestClassifier
from repro.core.config import RunConfig
from repro.forest.tree import random_tree
from repro.layout.hierarchical import HierarchicalForest, LayoutParams
from repro.reliability import ResilientClassifier
from repro.reliability.integrity import LayoutIntegrity
from repro.utils.clock import Stopwatch
from repro.utils.tables import format_table

_REPEATS = 20


def _trees():
    rng = np.random.default_rng(23)
    return [random_tree(rng, 16, 12, leaf_prob=0.2, min_nodes=3) for _ in range(12)]


def _classify_wall_seconds(clf, X, config):
    watch = Stopwatch()
    for _ in range(_REPEATS):
        res = clf.classify(X, config)
    return watch.elapsed() / _REPEATS, res


def _run():
    trees = _trees()
    rng = np.random.default_rng(29)
    X = rng.standard_normal((2048, 16)).astype(np.float32)
    config = RunConfig(variant="hybrid")

    # Layout build: the only place integrity is allowed to cost anything.
    watch = Stopwatch()
    plain = HierarchicalForest.from_trees(
        trees, LayoutParams(6), with_integrity=False
    )
    build_plain_s = watch.elapsed()
    watch.restart()
    checked = HierarchicalForest.from_trees(trees, LayoutParams(6))
    build_checked_s = watch.elapsed()

    clf_plain = HierarchicalForestClassifier.from_trees(trees, 16)
    clf_plain._layout_cache[("hier", 6, 6)] = plain
    clf_checked = HierarchicalForestClassifier.from_trees(trees, 16)
    clf_checked._layout_cache[("hier", 6, 6)] = checked

    # Count verifications on the clean path.
    counter = {"n": 0}
    orig = LayoutIntegrity.verify_arrays

    def counting(self, layout):
        counter["n"] += 1
        return orig(self, layout)

    LayoutIntegrity.verify_arrays = counting
    try:
        wall_plain, res_plain = _classify_wall_seconds(clf_plain, X, config)
        wall_checked, res_checked = _classify_wall_seconds(clf_checked, X, config)
        clean_path_verifications = counter["n"]
    finally:
        LayoutIntegrity.verify_arrays = orig

    # Guarded clean path for comparison (pays one post-transfer check).
    guard = ResilientClassifier(clf_checked)
    res_guarded = guard.classify(X, config)

    return {
        "build_plain_s": build_plain_s,
        "build_checked_s": build_checked_s,
        "sim_seconds_plain": res_plain.seconds,
        "sim_seconds_checked": res_checked.seconds,
        "wall_per_call_plain_s": wall_plain,
        "wall_per_call_checked_s": wall_checked,
        "wall_ratio": wall_checked / wall_plain,
        "clean_path_verifications": clean_path_verifications,
        "guarded_sim_seconds": res_guarded.seconds,
        "guarded_transfer_verifications": (
            res_guarded.reliability.transfer_verifications
        ),
        "predictions_equal": bool(
            np.array_equal(res_plain.predictions, res_checked.predictions)
            and np.array_equal(res_plain.predictions, res_guarded.predictions)
        ),
    }


def test_reliability_clean_path_overhead(benchmark):
    out = run_once(benchmark, _run)
    print(
        "\n"
        + format_table(
            ["metric", "value"],
            [[k, v] for k, v in out.items()],
            title="Reliability: clean-path overhead (before/after integrity)",
            float_digits=6,
        )
    )
    # Identical simulated time: checksums are invisible to the timing model.
    assert out["sim_seconds_checked"] == out["sim_seconds_plain"]
    assert out["guarded_sim_seconds"] == out["sim_seconds_plain"]
    assert out["predictions_equal"]
    # Zero verifications on the unguarded clean path.
    assert out["clean_path_verifications"] == 0
    # The guard verifies each distinct layout exactly once after "transfer".
    assert out["guarded_transfer_verifications"] == 1
    # Wall-clock within noise of the no-integrity build.
    assert out["wall_ratio"] < 1.5
