"""Serving-layer soak bench: clean-path overhead and chaos determinism.

The serving front door is pure orchestration — admission, queuing,
batching, bookkeeping — so its acceptance bars are:

1. A fault-free replay serves every admitted request with predictions
   identical to the authoritative host trees (zero wrong answers), and
   never answers past a deadline.
2. The whole pipeline is deterministic: replaying the same seeded chaos
   scenario twice yields byte-identical survivability reports.
3. Wall-clock per served request through the whole simulated stack stays
   bounded (kernel simulation and reference verification dominate; the
   front door's own bookkeeping must stay noise on top of them).
"""

import json

import numpy as np

from benchmarks.conftest import run_once
from repro.core.classifier import HierarchicalForestClassifier
from repro.forest.tree import random_tree
from repro.reliability import ResilientClassifier
from repro.serving import (
    AdmissionPolicy,
    ChaosScenario,
    ServingFrontDoor,
    TrafficProfile,
    generate_trace,
    run_scenario,
)
from repro.utils.clock import SimulatedClock, Stopwatch
from repro.utils.tables import format_table


def _trees():
    rng = np.random.default_rng(23)
    return [random_tree(rng, 16, 12, leaf_prob=0.2, min_nodes=3) for _ in range(12)]


def _run():
    trees = _trees()
    rng = np.random.default_rng(29)
    X_pool = rng.standard_normal((2048, 16)).astype(np.float32)

    # --- clean-path replay through the front door --------------------
    clf = HierarchicalForestClassifier.from_trees(trees, 16)
    guard = ResilientClassifier(clf)
    clock = SimulatedClock()
    front = ServingFrontDoor(
        guard,
        clock=clock,
        admission=AdmissionPolicy(rate_qps=5000.0, burst=256.0),
        probe_X=X_pool[:64],
    )
    profile = TrafficProfile(
        name="bench", duration_s=0.5, base_qps=400.0, deadline_s=0.5
    )
    trace = generate_trace(profile, seed=7)
    watch = Stopwatch()
    requests = {}
    responses = []
    cursor = 0
    for arrival in trace:
        if arrival.at_s > clock.now():
            clock.advance(arrival.at_s - clock.now())
        lo = cursor % (X_pool.shape[0] - arrival.rows)
        cursor += arrival.rows
        req = front.try_submit(
            X_pool[lo : lo + arrival.rows], deadline_s=arrival.deadline_s
        )
        if req is not None:
            requests[req.request_id] = req
        responses.extend(front.pump())
    responses.extend(front.drain())
    wall_s = watch.elapsed()

    served = [r for r in responses if r.ok]
    wrong = 0
    late = 0
    for resp in served:
        ref = clf.predict(requests[resp.request_id].X)
        if not np.array_equal(resp.predictions, ref):
            wrong += 1
        if (
            requests[resp.request_id].deadline_s is not None
            and resp.finish_s > requests[resp.request_id].deadline_s
        ):
            late += 1

    # --- chaos determinism -------------------------------------------
    scenario = ChaosScenario(
        name="bench-storm",
        custom=TrafficProfile(
            name="bench-storm",
            duration_s=0.3,
            base_qps=300.0,
            shape="bursty",
            deadline_s=0.05,
        ),
        traffic_seed=3,
        fault_seed=5,
        tree_corruption_rate=0.2,
        launch_fail_rate=0.1,
    )
    rep_a = run_scenario(
        HierarchicalForestClassifier.from_trees(trees, 16), X_pool, scenario
    )
    rep_b = run_scenario(
        HierarchicalForestClassifier.from_trees(trees, 16), X_pool, scenario
    )
    deterministic = json.dumps(rep_a, sort_keys=True) == json.dumps(
        rep_b, sort_keys=True
    )

    return {
        "requests_offered": len(trace),
        "requests_served": len(served),
        "batches": front.stats.batches,
        "wall_seconds_total": wall_s,
        "wall_ms_per_request": 1e3 * wall_s / max(1, len(served)),
        "wrong_answers": wrong,
        "served_late": late,
        "chaos_deterministic": deterministic,
        "chaos_wrong_answers": rep_a["correctness"]["wrong_answers"],
    }


def test_serving_chaos_overhead(benchmark):
    out = run_once(benchmark, _run)
    print(
        "\n"
        + format_table(
            ["metric", "value"],
            [[k, v] for k, v in out.items()],
            title="Serving: front-door overhead and chaos determinism",
            float_digits=6,
        )
    )
    assert out["requests_served"] > 0
    # Correctness bars: no wrong answers, no late answers, ever.
    assert out["wrong_answers"] == 0
    assert out["served_late"] == 0
    assert out["chaos_wrong_answers"] == 0
    # Replaying the same seeds must reproduce the identical report.
    assert out["chaos_deterministic"]
    # Wall clock per request through the full simulated stack (kernel
    # roofline sim + CPU-reference verification dominate; the front door's
    # own bookkeeping is noise on top).  Generous bound; typical is ~5 ms.
    assert out["wall_ms_per_request"] < 50.0