"""Quantization frontier bench: codec accuracy vs CSR footprint.

Checks the compression axis's headline claims at bench scale: int8 loses at
most 0.5 pp against float32 (small gains from quantization noise are fine),
packed reaches the >= 3x footprint reduction, and packed — strictly the
smallest layout — always sits on the Pareto frontier.
"""

from benchmarks.conftest import run_once
from repro.experiments import quantize_frontier as exp


def test_quantize_frontier(benchmark, bench_scale):
    rows = run_once(benchmark, exp.run, scale=bench_scale)
    print("\n" + exp.render(rows))
    by = {(r["dataset"], r["codec"]): r for r in rows}
    datasets = sorted({r["dataset"] for r in rows})
    for name in datasets:
        assert by[name, "int8"]["accuracy_delta_pp"] >= -0.5
        assert by[name, "packed"]["reduction"] >= 3.0
        assert by[name, "packed"]["on_frontier"]
        best_acc = max(r["accuracy"] for r in rows if r["dataset"] == name)
        frontier = [r for r in rows if r["dataset"] == name and r["on_frontier"]]
        assert any(r["accuracy"] == best_acc for r in frontier)
