"""Ablation: algebraic FPGA contention model vs discrete-event simulation.

The FPGA analogue of the cache-model ablation: the closed-form
PipelineTimer is cross-checked against an event-driven simulation of CUs
queueing on their SLR's memory channel, across the paper's operating
points (Table 3's II/access-count combinations).
"""

from benchmarks.conftest import run_once
from repro.fpgasim.device import ALVEO_U250
from repro.fpgasim.eventsim import compare_with_timer
from repro.utils.tables import format_table

POINTS = [
    ("csr 1CU", 1, 4, 292),
    ("independent 1CU", 1, 1, 76),
    ("independent 12CU", 12, 1, 76),
    ("collaborative-ish 12CU", 12, 2, 3),
    ("onchip 1CU", 1, 0, 3),
]


def _run():
    rows = []
    for label, cus, acc, ii in POINTS:
        out = compare_with_timer(ALVEO_U250, cus, 3000, ii, acc)
        rows.append(
            [label, out["event_cycles"], out["algebraic_cycles"],
             out["ratio"], f"{out['event_channel_utilisation']:.2f}"]
        )
    return rows


def test_ablation_eventsim(benchmark):
    rows = run_once(benchmark, _run)
    print(
        "\n"
        + format_table(
            ["operating point", "event cycles", "algebraic cycles",
             "ratio", "channel util"],
            rows,
            title="Ablation: FPGA contention algebra vs event simulation",
        )
    )
    for row in rows:
        assert 0.95 < row[3] < 1.4, row
