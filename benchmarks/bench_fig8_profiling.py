"""Fig. 8 bench: global load requests + branch efficiency (Susy)."""

from benchmarks.conftest import run_once
from repro.experiments import fig8_profiling as exp


def test_fig8_profiling(benchmark, bench_scale):
    rows = run_once(benchmark, exp.run, scale=bench_scale)
    print("\n" + exp.render(rows))
    ratios = [r["gld_ratio"] for r in sorted(rows, key=lambda r: r["sd"])]
    assert all(r < 1.0 for r in ratios)
    assert ratios[-1] < ratios[0]  # shrinks as SD grows
