"""Trace-vs-fastpath throughput: the repo's first perf trajectory.

Measures *wall-clock* rows/s through the runtime seam
(:class:`repro.runtime.session.RuntimeSession`) for both execution modes:

* ``trace="model"`` — the instrumented transaction-counting kernels,
  measured at the serving front door's batch cap
  (``BatchPolicy.max_batch_rows``, 256 rows).  That cap is the trace
  path's saturated serving operating point: under load the micro-batcher
  forms batches right at it, and the coalescing policy never launches
  bigger ones.  This is the denominator the ISSUE's motivation names —
  "the serving layer is currently front-dooring a profiler";
* ``trace="off"`` — the vectorized :mod:`repro.fastpath` traversal at
  paper-scale batches (0.1M–1M rows), one measurement per layout family.

The speedup is structural, not just constant-factor: the trace path runs
warp-lockstep, so every warp pays Python-level work down to the *deepest*
member lane, while the fastpath's compacted frontier retires each lane at
its own leaf depth — the deeper the trees, the wider the gap.  The bench
forest uses depth-16 trees (unbounded depth is the usual random-forest
default; 16 is a modest cap).

The checked-in ``BENCH_fastpath.json`` records the speedup trajectory and
CI gates on it (``make fastpath``).  Absolute rows/s are machine-dependent,
so the gate normalizes by the same run's trace throughput: the
**fastpath/trace speedup ratio** at the gate batch size must stay above
the hard acceptance floor (50x) and above 90% of the baseline's ratio
(>10% regression fails).

Wall-clock timing goes through the sanctioned
:class:`repro.utils.clock.Stopwatch` seam — nothing here feeds the
simulated world, which stays deterministic.

Usage::

    PYTHONPATH=src python benchmarks/bench_fastpath.py --scale smoke
    PYTHONPATH=src python benchmarks/bench_fastpath.py --write-baseline
    PYTHONPATH=src python benchmarks/bench_fastpath.py --check   # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

from repro.core.config import TRACE_MODEL, TRACE_OFF, RunConfig
from repro.forest.tree import random_tree
from repro.layout.hierarchical import LayoutParams
from repro.runtime.planner import compile_plan
from repro.runtime.session import RuntimeSession
from repro.serving.batching import BatchPolicy
from repro.utils.clock import Stopwatch
from repro.utils.tables import format_table

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(REPO, "BENCH_fastpath.json")

#: Acceptance floor (ISSUE 7): fastpath must be >= 50x the trace path at
#: the gate batch size.
MIN_SPEEDUP = 50.0
#: CI regression gate: the measured speedup ratio may not drop more than
#: 10% below the checked-in baseline's.
REGRESSION_TOLERANCE = 0.10
#: Batch size the gate is evaluated at (present in every scale).
GATE_ROWS = 100_000
#: Trace-path batch: the serving front door's coalescing cap — the largest
#: batch the micro-batcher ever launches, i.e. the trace path's saturated
#: serving throughput.
SERVING_BATCH_ROWS = BatchPolicy().max_batch_rows

N_FEATURES = 16
N_TREES = 12
TREE_DEPTH = 16

#: One measured config per layout family (hier / csr / fil), plus the
#: quantized variants of the CSR layout: the gather-time dequantization
#: runs inside the timed region, so the gate also bounds the codec
#: surcharge.  CSR is the family with gate headroom — the hybrid's trace
#: denominator is ~2x faster, which would park its quantized ratio near
#: the 50x floor where scheduler noise flakes the gate; hier-family codec
#: correctness is pinned by the golden suite instead (cuml has no
#: quantized form — the FIL shim is float32-only).
FAMILIES = (
    ("gpu-hybrid", RunConfig(variant="hybrid", layout=LayoutParams(6, 10))),
    ("gpu-csr", RunConfig(variant="csr")),
    ("gpu-cuml", RunConfig(variant="cuml")),
    ("gpu-csr-int8", RunConfig(variant="csr", precision="int8")),
    ("gpu-csr-packed", RunConfig(variant="csr", precision="packed")),
)

SCALES = {
    "smoke": {"fastpath_rows": (10_000, GATE_ROWS)},
    "default": {"fastpath_rows": (GATE_ROWS, 1_000_000)},
    "full": {"fastpath_rows": (GATE_ROWS, 300_000, 1_000_000)},
}


def _forest():
    rng = np.random.default_rng(71)
    return [
        random_tree(rng, N_FEATURES, TREE_DEPTH, leaf_prob=0.2, min_nodes=3)
        for _ in range(N_TREES)
    ]


def _queries(n: int) -> np.ndarray:
    return (
        np.random.default_rng(73).standard_normal((n, N_FEATURES)).astype(np.float32)
    )


def _timed_run(session, plan, X) -> float:
    watch = Stopwatch()
    session.run(plan, X)
    return watch.elapsed()


def measure(scale: str, repeats: int = 3) -> dict:
    """One full measurement pass; returns the baseline-shaped payload.

    Repeats are interleaved across families — each repeat sweeps every
    (family, batch) cell once, and every cell keeps its best time — so a
    transient slow window on a shared machine cannot poison all repeats
    of any single cell.
    """
    cfg = SCALES[scale]
    trees = _forest()
    session = RuntimeSession(trees, verify_against_reference=False)
    X_pool = _queries(max(cfg["fastpath_rows"]))
    plans = {}
    for name, run_cfg in FAMILIES:
        base = dict(
            platform=run_cfg.platform,
            variant=run_cfg.variant,
            layout=run_cfg.layout,
            precision=run_cfg.precision,
        )
        fast_plan = compile_plan(None, RunConfig(trace=TRACE_OFF, **base))
        model_plan = compile_plan(None, RunConfig(trace=TRACE_MODEL, **base))
        # Warm-up builds the layout (and the fastpath edge tables) outside
        # the timed region.
        session.run(fast_plan, X_pool[:64])
        session.run(model_plan, X_pool[:64])
        plans[name] = (fast_plan, model_plan)

    best_fast = {name: {n: float("inf") for n in cfg["fastpath_rows"]} for name, _ in FAMILIES}
    best_trace = {name: float("inf") for name, _ in FAMILIES}
    for _ in range(repeats):
        for name, _ in FAMILIES:
            fast_plan, model_plan = plans[name]
            for n in cfg["fastpath_rows"]:
                best_fast[name][n] = min(
                    best_fast[name][n], _timed_run(session, fast_plan, X_pool[:n])
                )
            best_trace[name] = min(
                best_trace[name],
                _timed_run(session, model_plan, X_pool[:SERVING_BATCH_ROWS]),
            )

    results = {}
    for name, _ in FAMILIES:
        trace_rows_per_s = SERVING_BATCH_ROWS / best_trace[name]
        fastpath = {str(n): n / t for n, t in best_fast[name].items()}
        results[name] = {
            "trace_rows_per_s": trace_rows_per_s,
            "fastpath_rows_per_s": fastpath,
            "speedup_at_gate": fastpath[str(GATE_ROWS)] / trace_rows_per_s,
        }
    return {
        "version": 1,
        "scale": scale,
        "forest": {
            "n_trees": N_TREES,
            "max_depth": TREE_DEPTH,
            "n_features": N_FEATURES,
        },
        "gate": {
            "gate_rows": GATE_ROWS,
            "serving_batch_rows": SERVING_BATCH_ROWS,
            "min_speedup": MIN_SPEEDUP,
            "regression_tolerance": REGRESSION_TOLERANCE,
        },
        "results": results,
    }


def print_report(payload: dict) -> None:
    rows = []
    for name, r in sorted(payload["results"].items()):
        row = [name, f"{r['trace_rows_per_s']:.0f}"]
        for n, v in sorted(r["fastpath_rows_per_s"].items(), key=lambda kv: int(kv[0])):
            row.append(f"{v:.0f}")
        row.append(f"{r['speedup_at_gate']:.0f}x")
        rows.append(row)
    any_result = next(iter(payload["results"].values()))
    n_cols = sorted(any_result["fastpath_rows_per_s"], key=int)
    header = (
        ["config", f"trace rows/s @{SERVING_BATCH_ROWS}"]
        + [f"fastpath rows/s @{int(n):,}" for n in n_cols]
        + [f"speedup @{GATE_ROWS:,}"]
    )
    print(format_table(header, rows, title=f"fastpath throughput ({payload['scale']})"))


def check_against_baseline(payload: dict, baseline: dict | None) -> list:
    """Gate failures (empty list = pass)."""
    failures = []
    for name, r in sorted(payload["results"].items()):
        speedup = r["speedup_at_gate"]
        if speedup < MIN_SPEEDUP:
            failures.append(
                f"{name}: speedup {speedup:.1f}x at {GATE_ROWS:,} rows is below "
                f"the {MIN_SPEEDUP:.0f}x acceptance floor"
            )
        if baseline is None:
            continue
        base = baseline["results"].get(name)
        if base is None:
            failures.append(f"{name}: missing from baseline {BASELINE_PATH}")
            continue
        floor = base["speedup_at_gate"] * (1.0 - REGRESSION_TOLERANCE)
        if speedup < floor:
            failures.append(
                f"{name}: speedup {speedup:.1f}x regressed >10% vs baseline "
                f"{base['speedup_at_gate']:.1f}x (floor {floor:.1f}x)"
            )
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    ap.add_argument(
        "--write-baseline",
        action="store_true",
        help=f"write the measurement to {BASELINE_PATH}",
    )
    ap.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if the speedup gate fails (CI mode)",
    )
    args = ap.parse_args(argv)

    payload = measure(args.scale)
    print_report(payload)

    if args.write_baseline:
        with open(BASELINE_PATH, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"[baseline written to {BASELINE_PATH}]")
        return 0

    baseline = None
    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH, encoding="utf-8") as f:
            baseline = json.load(f)
    elif args.check:
        print(f"[no baseline at {BASELINE_PATH}; run --write-baseline first]")
        return 2

    failures = check_against_baseline(payload, baseline)
    if failures and args.check:
        # A shared CI box can hand out one bad scheduling window; a real
        # regression reproduces, so confirm before failing the gate.
        print("[gate failed; re-measuring once to confirm]")
        for line in failures:
            print(f"  first pass: {line}")
        payload = measure(args.scale)
        print_report(payload)
        failures = check_against_baseline(payload, baseline)
    if failures:
        for line in failures:
            print(f"FAIL: {line}")
        return 1 if args.check else 0
    floor_note = (
        f"and within {REGRESSION_TOLERANCE:.0%} of baseline"
        if baseline is not None
        else "(no baseline comparison)"
    )
    print(f"gate ok: all configs >= {MIN_SPEEDUP:.0f}x {floor_note}")
    return 0


def test_fastpath_throughput(benchmark):
    """pytest-benchmark wrapper: smoke measurement + acceptance floor."""
    from benchmarks.conftest import run_once

    payload = run_once(benchmark, measure, scale="smoke")
    print()
    print_report(payload)
    for name, r in payload["results"].items():
        assert r["speedup_at_gate"] >= MIN_SPEEDUP, (
            f"{name}: {r['speedup_at_gate']:.1f}x below the "
            f"{MIN_SPEEDUP:.0f}x floor"
        )


if __name__ == "__main__":
    sys.exit(main())
