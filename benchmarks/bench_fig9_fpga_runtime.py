"""Fig. 9 bench: FPGA runtime vs tree depth and subtree depth."""

from benchmarks.conftest import run_once
from repro.experiments import fig9_fpga_runtime as exp


def test_fig9_fpga_runtime(benchmark, bench_scale):
    rows = run_once(benchmark, exp.run, scale=bench_scale)
    print("\n" + exp.render(rows))
    # Deeper subtrees lower independent runtimes (fewer crossings).
    for name in {r["dataset"] for r in rows}:
        ind = sorted(
            (r["sd"], r["seconds"])
            for r in rows
            if r["dataset"] == name and r["variant"] == "independent"
        )
        assert ind[-1][1] <= ind[0][1] * 1.05
