"""Fig. 10 bench: GPU vs FPGA on Susy."""

from benchmarks.conftest import run_once
from repro.experiments import fig10_gpu_vs_fpga as exp


def test_fig10_gpu_vs_fpga(benchmark, bench_scale):
    rows = run_once(benchmark, exp.run, scale=bench_scale)
    print("\n" + exp.render(rows))
    for r in rows:
        assert r["gpu_advantage"] > 10  # paper: orders of magnitude
